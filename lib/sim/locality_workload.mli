(** Mogul-style locality traffic (paper Section 3.3's motivation):
    connection popularity follows a Zipf law and packets arrive in
    short bursts, so there is locality — but spread over many flows,
    not one.  Sits between the packet-train and OLTP extremes. *)

type config = {
  connections : int;
  packets : int;           (** Total metered packets. *)
  zipf_exponent : float;   (** 0 = uniform; ~1 = classic Zipf. *)
  burst_length : Numerics.Distribution.t;
      (** Packets delivered per burst (values < 1 become 1). *)
  ack_fraction : float;    (** Fraction of packets that are pure acks
                               (preceded by a transmit on that flow). *)
  seed : int;
}

val default_config : ?connections:int -> ?packets:int -> unit -> config
(** Defaults: 256 connections, 50_000 packets, exponent 1.0, geometric
    bursts of mean 4, 30 % acks. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> Report.t
(** [?obs] and [?tracer] instrument the demultiplexer as in
    {!Meter.create}. *)
