type t = {
  demux : unit Demux.Registry.t;
  mutable entry : Numerics.Stats.t;
  mutable ack : Numerics.Stats.t;
  mutable measuring : bool;
}

let create ?obs ?tracer demux =
  (match obs with
  | Some obs -> Demux.Registry.observe obs demux
  | None -> ());
  (match tracer with
  | Some tracer ->
    Demux.Lookup_stats.set_tracer demux.Demux.Registry.stats tracer
  | None -> ());
  { demux; entry = Numerics.Stats.create (); ack = Numerics.Stats.create ();
    measuring = true }

let demux t = t.demux
let set_measuring t flag = t.measuring <- flag
let measuring t = t.measuring

let start_measuring t =
  Demux.Lookup_stats.reset t.demux.Demux.Registry.stats;
  t.entry <- Numerics.Stats.create ();
  t.ack <- Numerics.Stats.create ();
  t.measuring <- true

let accumulator t = function
  | Demux.Types.Data -> t.entry
  | Demux.Types.Pure_ack -> t.ack

let examined_so_far t =
  (Demux.Lookup_stats.snapshot t.demux.Demux.Registry.stats)
    .Demux.Lookup_stats.pcbs_examined

let lookup t ~kind flow =
  let before = examined_so_far t in
  match t.demux.Demux.Registry.lookup ~kind flow with
  | None ->
    failwith
      (Printf.sprintf "Meter.lookup: no PCB for flow %s"
         (Packet.Flow.to_string flow))
  | Some _ ->
    if t.measuring then
      Numerics.Stats.add (accumulator t kind)
        (float_of_int (examined_so_far t - before))

let note_send t flow = t.demux.Demux.Registry.note_send flow
let entry_examined t = t.entry
let ack_examined t = t.ack
