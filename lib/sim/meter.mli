(** Per-packet-kind measurement wrapper around a demultiplexer.

    {!Demux.Lookup_stats} aggregates over all lookups; the paper's
    analysis distinguishes transaction entries from response
    acknowledgements, so this wrapper additionally records each
    lookup's examined count into a per-kind accumulator by diffing the
    aggregate counter around the call.  Measurement can be switched
    off during simulation warm-up. *)

type t

val create :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> unit Demux.Registry.t -> t
(** Wrap a demultiplexer.  [?obs] registers its accounting via
    {!Demux.Registry.observe} (counters, PCB gauge, examined-count
    histogram); [?tracer] attaches a hot-path tracer via
    {!Demux.Lookup_stats.set_tracer}.  Both default to off, leaving
    the demultiplexer untouched — every simulation workload funnels
    through here, so these two hooks instrument them all. *)

val demux : t -> unit Demux.Registry.t

val set_measuring : t -> bool -> unit
val measuring : t -> bool
(** Lookups still happen while off (the data structure must stay
    warm); they are just not recorded. *)

val start_measuring : t -> unit
(** Reset the demultiplexer's aggregate statistics and the per-kind
    accumulators, then switch measurement on — the end-of-warm-up
    action. *)

val lookup : t -> kind:Demux.Types.packet_kind -> Packet.Flow.t -> unit
(** Perform a metered receive-path lookup.
    @raise Failure if the flow has no PCB (a simulation bug: OLTP
    connections are long-lived). *)

val note_send : t -> Packet.Flow.t -> unit

val entry_examined : t -> Numerics.Stats.t
(** Per-lookup examined counts for {!Demux.Types.Data} packets. *)

val ack_examined : t -> Numerics.Stats.t
(** Same for {!Demux.Types.Pure_ack} packets. *)
