type config = {
  oltp_users : int;
  bulk_streams : int;
  bulk_rate : float;
  response_time : float;
  rtt : float;
  warmup : float;
  duration : float;
  seed : int;
}

let default_config ?(oltp_users = 1000) ?(bulk_streams = 4) () =
  { oltp_users; bulk_streams; bulk_rate = 400.0; response_time = 0.2;
    rtt = 0.001; warmup = 10.0; duration = 60.0; seed = 42 }

type result = {
  combined : Report.t;
  oltp_mean : float;
  bulk_mean : float;
}

let run ?obs ?tracer config spec =
  if config.oltp_users <= 0 then invalid_arg "Mixed_workload.run: no OLTP users";
  if config.bulk_streams < 0 then
    invalid_arg "Mixed_workload.run: negative bulk_streams";
  if config.bulk_rate <= 0.0 then invalid_arg "Mixed_workload.run: bulk_rate <= 0";
  let root_rng = Numerics.Rng.create ~seed:config.seed in
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  (* Per-traffic-class accounting on top of the meter: diff the
     aggregate examined counter around each lookup. *)
  let oltp_stats = ref (Numerics.Stats.create ()) in
  let bulk_stats = ref (Numerics.Stats.create ()) in
  let measuring = ref false in
  let examined () =
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)
      .Demux.Lookup_stats.pcbs_examined
  in
  let classified_lookup class_stats ~kind flow =
    let before = examined () in
    Meter.lookup meter ~kind flow;
    if !measuring then
      Numerics.Stats.add !class_stats (float_of_int (examined () - before))
  in
  (* Population: OLTP users first, bulk streams after. *)
  let oltp_flows = Topology.flows config.oltp_users in
  let bulk_flows =
    Array.init config.bulk_streams (fun i ->
        Topology.flow_of_client (config.oltp_users + i))
  in
  Array.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) oltp_flows;
  Array.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) bulk_flows;
  let engine = Engine.create () in
  (* OLTP side: the four-packet TPC/A cycle. *)
  let think =
    Numerics.Distribution.truncated_exponential ~rate:0.1 ~cutoff:100.0
  in
  let user_rngs =
    Array.init config.oltp_users (fun _ -> Numerics.Rng.split root_rng)
  in
  let rec oltp_cycle user engine =
    let flow = oltp_flows.(user) in
    classified_lookup oltp_stats ~kind:Demux.Types.Data flow;
    Meter.note_send meter flow;
    Engine.schedule engine ~delay:config.response_time (fun engine ->
        Meter.note_send meter flow;
        Engine.schedule engine ~delay:config.rtt (fun engine ->
            classified_lookup oltp_stats ~kind:Demux.Types.Pure_ack flow;
            Engine.schedule engine
              ~delay:(Numerics.Distribution.sample think user_rngs.(user))
              (oltp_cycle user)))
  in
  for user = 0 to config.oltp_users - 1 do
    Engine.schedule engine
      ~delay:(Numerics.Distribution.sample think user_rngs.(user))
      (oltp_cycle user)
  done;
  (* Bulk side: a steady stream of data segments per connection, with
     a transmit-side ack after every second segment. *)
  let gap = 1.0 /. config.bulk_rate in
  let rec bulk_cycle stream count engine =
    let flow = bulk_flows.(stream) in
    classified_lookup bulk_stats ~kind:Demux.Types.Data flow;
    if count mod 2 = 0 then Meter.note_send meter flow;
    Engine.schedule engine ~delay:gap (bulk_cycle stream (count + 1))
  in
  for stream = 0 to config.bulk_streams - 1 do
    Engine.schedule engine
      ~delay:(gap *. float_of_int (stream + 1) /. float_of_int (config.bulk_streams + 1))
      (bulk_cycle stream 0)
  done;
  Meter.set_measuring meter false;
  Engine.run ~until:config.warmup engine;
  Meter.start_measuring meter;
  oltp_stats := Numerics.Stats.create ();
  bulk_stats := Numerics.Stats.create ();
  measuring := true;
  Engine.run ~until:(config.warmup +. config.duration) engine;
  let combined = Report.of_meter ~workload:"mixed" meter in
  { combined; oltp_mean = Numerics.Stats.mean !oltp_stats;
    bulk_mean = Numerics.Stats.mean !bulk_stats }

let pp_results ppf results =
  Format.fprintf ppf "%-16s %10s %12s %12s %9s@." "algorithm" "packets"
    "oltp-mean" "bulk-mean" "hit-rate";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %10d %12.2f %12.2f %9.4f@."
        r.combined.Report.algorithm r.combined.Report.packets r.oltp_mean
        r.bulk_mean r.combined.Report.hit_rate)
    results
