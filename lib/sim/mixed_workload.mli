(** Mixed OLTP + bulk-transfer traffic.

    The abstract's full claim: the Sequent scheme "work[s] an order of
    magnitude better for OLTP traffic than the one-PCB cache approach
    while still maintaining good performance for packet-train
    traffic."  Real servers carry both at once — thousands of
    terminals {e and} a few bulk transfers — and a scheme must not buy
    one regime by selling the other.  This workload runs TPC/A users
    and continuous bulk streams through one demultiplexer and reports
    each traffic class separately. *)

type config = {
  oltp_users : int;
  bulk_streams : int;        (** Concurrent bulk-transfer connections. *)
  bulk_rate : float;         (** Data segments per second per stream. *)
  response_time : float;
  rtt : float;
  warmup : float;
  duration : float;
  seed : int;
}

val default_config : ?oltp_users:int -> ?bulk_streams:int -> unit -> config
(** Defaults: 1000 OLTP users, 4 bulk streams at 400 segments/s each,
    R = 0.2 s, D = 1 ms, 10 s warm-up, 60 measured seconds. *)

type result = {
  combined : Report.t;
  oltp_mean : float;  (** PCBs examined per OLTP packet. *)
  bulk_mean : float;  (** PCBs examined per bulk segment. *)
}

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> result
(** [?obs] and [?tracer] instrument the demultiplexer as in
    {!Meter.create}. *)

val pp_results : Format.formatter -> result list -> unit
