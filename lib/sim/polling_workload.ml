type config = {
  users : int;
  poll_interval : float;
  response_time : float;
  rtt : float;
  rounds : int;
  seed : int;
}

let default_config ?(users = 2000) ?(rounds = 20) () =
  { users; poll_interval = 10.0; response_time = 0.2; rtt = 0.001; rounds;
    seed = 42 }

let run ?obs ?tracer config spec =
  if config.rounds <= 0 then invalid_arg "Polling_workload.run: rounds <= 0";
  let tpca_config =
    { Tpca_workload.users = config.users;
      think = Numerics.Distribution.deterministic config.poll_interval;
      response_time = config.response_time; rtt = config.rtt;
      (* One full staggered sweep of warm-up, then the requested number
         of measured sweeps. *)
      warmup = config.poll_interval;
      duration = config.poll_interval *. float_of_int config.rounds;
      stagger = Tpca_workload.Even; seed = config.seed; delayed_acks = false;
      extra_query_packets = 0 }
  in
  let report = Tpca_workload.run ?obs ?tracer tpca_config spec in
  { report with Report.workload = "polling" }
