(** Deterministic central-server polling — the paper's worst case for
    move-to-front (Section 3.2): "if the think times were
    deterministic (exactly 10 seconds always), Crowcroft's algorithm
    would look through all 2,000 PCBs on each transaction entry", the
    pattern of point-of-sale terminals polled in rotation. *)

type config = {
  users : int;
  poll_interval : float;  (** Fixed think time, seconds. *)
  response_time : float;
  rtt : float;
  rounds : int;           (** Measured polling sweeps. *)
  seed : int;
}

val default_config : ?users:int -> ?rounds:int -> unit -> config
(** Defaults: 2000 users, 10 s interval, R = 0.2, D = 1 ms,
    20 rounds. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> Report.t
(** [?obs] and [?tracer] instrument the demultiplexer as in
    {!Meter.create}. *)
