type interleave = Sequential | Round_robin | Shuffled

type config = {
  clients : int;
  requests_per_client : int;
  payload : int;
  close_after : bool;
  interleave : interleave;
  seed : int;
  server_iss : Packet.Flow.t -> int32;
}

let config ?(requests_per_client = 4) ?(payload = 64) ?(close_after = false)
    ?(interleave = Round_robin) ?(seed = 42)
    ?(server_iss = Tcpcore.Stack.deterministic_iss) ~clients () =
  if clients <= 0 then invalid_arg "Segment_workload.config: clients <= 0";
  if payload <= 0 then invalid_arg "Segment_workload.config: payload <= 0";
  if requests_per_client < 0 then
    invalid_arg "Segment_workload.config: requests_per_client < 0";
  { clients; requests_per_client; payload; close_after; interleave; seed;
    server_iss }

type trace = {
  datagrams : bytes array;
  flows : Packet.Flow.t array;
  payload_bytes : int;
  payload_bytes_per_flow : int;
  syns : int;
  fins : int;
}

(* The client's own ISS: the reversed flow is the connection from the
   client's point of view, so both sides draw from the same per-flow
   function without colliding. *)
let client_iss flow = Tcpcore.Stack.deterministic_iss (Packet.Flow.reverse flow)

(* One client's segments, in its own order.  [flow] is server-view;
   segments travel client -> server, so src is the remote endpoint. *)
let flow_segments cfg flow =
  let src = flow.Packet.Flow.remote and dst = flow.Packet.Flow.local in
  let c_iss = client_iss flow in
  let s_ack = Int32.add (cfg.server_iss flow) 1l in
  let seg ?payload ~flags ~seq ~ack_number () =
    Packet.Segment.make ?payload ~flags ~seq ~ack_number ~src ~dst ()
  in
  let data k =
    (* Deterministic, flow-independent fill. *)
    String.make cfg.payload (Char.chr (Char.code 'a' + (k mod 26)))
  in
  let syn =
    seg ~flags:Packet.Tcp_header.flag_syn ~seq:c_iss ~ack_number:0l ()
  in
  let hs_ack =
    seg ~flags:Packet.Tcp_header.flag_ack ~seq:(Int32.add c_iss 1l)
      ~ack_number:s_ack ()
  in
  let requests =
    List.init cfg.requests_per_client (fun k ->
        seg ~payload:(data k) ~flags:Packet.Tcp_header.flag_psh_ack
          ~seq:(Int32.add c_iss (Int32.of_int (1 + (k * cfg.payload))))
          ~ack_number:s_ack ())
  in
  let fin =
    if not cfg.close_after then []
    else
      [ seg ~flags:Packet.Tcp_header.flag_fin_ack
          ~seq:
            (Int32.add c_iss
               (Int32.of_int (1 + (cfg.requests_per_client * cfg.payload))))
          ~ack_number:s_ack () ]
  in
  (syn :: hs_ack :: requests) @ fin

let generate cfg =
  let flows = Array.init cfg.clients Topology.flow_of_client in
  let queues = Array.map (flow_segments cfg) flows in
  let merged =
    match cfg.interleave with
    | Sequential -> List.concat (Array.to_list queues)
    | Round_robin ->
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        continue := false;
        Array.iteri
          (fun i q ->
            match q with
            | [] -> ()
            | s :: rest ->
              queues.(i) <- rest;
              acc := s :: !acc;
              continue := true)
          queues
      done;
      List.rev !acc
    | Shuffled ->
      (* Random merge preserving per-flow order: repeatedly pick a
         non-empty queue and pop its head. *)
      let rng = Numerics.Rng.create ~seed:cfg.seed in
      let nonempty = ref (Array.to_list (Array.mapi (fun i _ -> i) queues)) in
      let acc = ref [] in
      while !nonempty <> [] do
        let live = Array.of_list !nonempty in
        let i = live.(Numerics.Rng.int rng ~bound:(Array.length live)) in
        (match queues.(i) with
        | [] -> assert false
        | s :: rest ->
          queues.(i) <- rest;
          acc := s :: !acc;
          if rest = [] then
            nonempty := List.filter (fun j -> j <> i) !nonempty);
      done;
      List.rev !acc
  in
  let datagrams =
    Array.of_list (List.map Packet.Segment.to_bytes merged)
  in
  let per_flow = cfg.requests_per_client * cfg.payload in
  { datagrams; flows; payload_bytes = per_flow * cfg.clients;
    payload_bytes_per_flow = per_flow; syns = cfg.clients;
    fins = (if cfg.close_after then cfg.clients else 0) }
