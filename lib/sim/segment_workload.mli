(** Segment-level workload generation: deterministic wire-format
    datagram traces for driving full stacks end-to-end.

    Every other workload in this library speaks demultiplexer
    operations; the shared-nothing pipeline ({!Parallel.Smp}) consumes
    {e bytes} — the full path is parse → steer → demux → state
    machine.  This generator plays the client side of [clients]
    concurrent connections against {!Topology.server}: handshake, an
    optional stream of request segments, optionally an orderly close,
    all serialized with valid checksums.

    The trace is pure data, computed before the run, so it can be
    replayed identically into one stack or sharded across N — which
    requires knowing the server's SYN-ACK sequence number in advance.
    That is what [server_iss] provides: give the server stacks the
    same per-flow function (e.g. [Tcpcore.Stack.deterministic_iss],
    the default) and every client acknowledgement in the trace is
    exactly right. *)

type interleave =
  | Sequential   (** All of flow 0's segments, then flow 1's, ... *)
  | Round_robin  (** Phase-by-phase: every SYN, every handshake ACK,
                     every first request, ... — maximal concurrency. *)
  | Shuffled     (** Seeded random merge of the per-flow queues;
                     each flow's own order is preserved. *)

type config = {
  clients : int;               (** Concurrent connections. *)
  requests_per_client : int;   (** Data segments after the handshake. *)
  payload : int;               (** Bytes per data segment (>= 1). *)
  close_after : bool;          (** End each flow with a client FIN. *)
  interleave : interleave;
  seed : int;                  (** Only consulted by [Shuffled]. *)
  server_iss : Packet.Flow.t -> int32;
      (** The server's ISS for a (server-view) flow; must match the
          consuming stack's [~iss] for acknowledgement numbers in the
          trace to be acceptable. *)
}

val config :
  ?requests_per_client:int -> ?payload:int -> ?close_after:bool ->
  ?interleave:interleave -> ?seed:int ->
  ?server_iss:(Packet.Flow.t -> int32) -> clients:int -> unit -> config
(** Defaults: 4 requests of 64 bytes, no close, [Round_robin],
    seed 42, [Tcpcore.Stack.deterministic_iss].
    @raise Invalid_argument on non-positive clients or payload, or
    negative request count. *)

type trace = {
  datagrams : bytes array;       (** Wire-format, in delivery order. *)
  flows : Packet.Flow.t array;   (** Server-view flow of client [i]. *)
  payload_bytes : int;           (** Total data bytes offered. *)
  payload_bytes_per_flow : int;  (** Data bytes offered per flow. *)
  syns : int;                    (** = clients. *)
  fins : int;                    (** = clients if closing, else 0. *)
}

val generate : config -> trace
(** Build the trace.  Per client: SYN; ACK of the server's SYN-ACK;
    [requests_per_client] data segments; optionally FIN.  A server
    stack replaying this (with the matching [~iss]) ends with every
    flow [Established] ([Close_wait] after a client FIN) and
    [bytes_in = payload_bytes_per_flow] — the conservation oracle the
    lockstep and migration tests assert. *)
