type stagger = Sampled | Even

type config = {
  users : int;
  think : Numerics.Distribution.t;
  response_time : float;
  rtt : float;
  warmup : float;
  duration : float;
  stagger : stagger;
  seed : int;
  delayed_acks : bool;
  extra_query_packets : int;
}

let default_config ?warmup ?(duration = 120.0) ?(seed = 42)
    (params : Analysis.Tpca_params.t) =
  let mean_think = Analysis.Tpca_params.think_time_mean params in
  let warmup = match warmup with Some w -> w | None -> mean_think in
  { users = params.Analysis.Tpca_params.users;
    think =
      Numerics.Distribution.truncated_exponential
        ~rate:params.Analysis.Tpca_params.rate
        ~cutoff:(Analysis.Tpca_params.think_time_cutoff params);
    response_time = params.Analysis.Tpca_params.response_time;
    rtt = params.Analysis.Tpca_params.rtt; warmup; duration;
    stagger = Sampled; seed; delayed_acks = false; extra_query_packets = 0 }

let run ?obs ?tracer config spec =
  if config.users <= 0 then invalid_arg "Tpca_workload.run: users <= 0";
  if config.duration <= 0.0 then invalid_arg "Tpca_workload.run: duration <= 0";
  let root_rng = Numerics.Rng.create ~seed:config.seed in
  let user_rngs =
    Array.init config.users (fun _ -> Numerics.Rng.split root_rng)
  in
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  let flows = Topology.flows config.users in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  let engine = Engine.create () in
  (* Traced events and latencies are stamped in virtual time. *)
  (match tracer with
  | Some tracer -> Obs.Trace.set_clock tracer (Engine.clock engine)
  | None -> ());
  let latency =
    Option.map
      (fun obs ->
        Obs.Registry.histogram obs ~units:"us"
          ~help:
            "query arrival to response-ack delivery, virtual time, \
             measured window only"
          ("sim.tpca." ^ demux.Demux.Registry.name ^ ".txn_latency"))
      obs
  in
  let record_latency started =
    match latency with
    | Some histogram when Meter.measuring meter ->
      Obs.Histogram.record histogram
        (int_of_float ((Engine.now engine -. started) *. 1e6))
    | Some _ | None -> ()
  in
  (* One user's unending transaction cycle.  All four packets of the
     paper's exchange appear: the query (metered Data lookup), the
     query's transport-level ack and the response (transmit events),
     and the response's transport-level ack (metered Pure_ack lookup)
     arriving one RTT after the response goes out. *)
  if config.extra_query_packets < 0 then
    invalid_arg "Tpca_workload.run: extra_query_packets < 0";
  let rec enter_transaction user engine =
    let flow = flows.(user) in
    let started = Engine.now engine in
    Meter.lookup meter ~kind:Demux.Types.Data flow;
    (* Chatty clients (Section 3.4): redundant segments arrive
       back-to-back with the query, forming a micro-train. *)
    for _ = 1 to config.extra_query_packets do
      Meter.lookup meter ~kind:Demux.Types.Data flow
    done;
    if not config.delayed_acks then
      Meter.note_send meter flow (* transport-level ack of the query *);
    Engine.schedule engine ~delay:config.response_time (fun engine ->
        Meter.note_send meter flow (* the response *);
        Engine.schedule engine ~delay:config.rtt (fun engine ->
            Meter.lookup meter ~kind:Demux.Types.Pure_ack flow;
            record_latency started;
            let think =
              Numerics.Distribution.sample config.think user_rngs.(user)
            in
            Engine.schedule engine ~delay:think (enter_transaction user)))
  in
  let mean_think = Numerics.Distribution.mean config.think in
  for user = 0 to config.users - 1 do
    let start =
      match config.stagger with
      | Sampled -> Numerics.Distribution.sample config.think user_rngs.(user)
      | Even ->
        mean_think *. float_of_int (user + 1) /. float_of_int config.users
    in
    Engine.schedule engine ~delay:start (enter_transaction user)
  done;
  Meter.set_measuring meter false;
  Engine.run ~until:config.warmup engine;
  Meter.start_measuring meter;
  Engine.run ~until:(config.warmup +. config.duration) engine;
  Report.of_meter ~workload:"tpca" meter
