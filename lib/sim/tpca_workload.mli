(** TPC/A traffic simulation (paper Section 2).

    Each simulated user cycles: enter a transaction (query packet
    arrives at the server — a metered Data lookup), receive the
    server's transport-level acknowledgement and, [R] later, its
    response (two transmit-side events), deliver the transport-level
    acknowledgement to the response one RTT after the response is sent
    (a metered Pure_ack lookup), then think.  This is exactly the
    four-packet exchange and timing diagram the paper's analysis
    assumes, except that think times use the {e real} truncated
    distribution rather than the analysis' untruncated
    approximation. *)

type stagger = Sampled | Even
(** How users' first transactions are spread: [Sampled] draws each
    user's initial delay from the think-time distribution (the
    memoryless steady state); [Even] spaces users uniformly across one
    mean think time — the deterministic polling pattern. *)

type config = {
  users : int;
  think : Numerics.Distribution.t;
  response_time : float;
  rtt : float;
  warmup : float;     (** Simulated seconds before measurement starts. *)
  duration : float;   (** Measured simulated seconds. *)
  stagger : stagger;
  seed : int;
  delayed_acks : bool;
      (** Paper footnote 2: with delayed acknowledgements the server
          never sends the separate transport-level ack for the query
          (packet 2 of the exchange), piggybacking it on the response.
          The paper claims "no effect on the results at the database
          server"; experiment E19 checks that (it is exactly true for
          every algorithm whose transmit path is stateless, and a
          small effect on the send/receive cache). *)
  extra_query_packets : int;
      (** Paper Section 3.4's hit-ratio anomaly: old database software
          sent "three times as many packets for each transaction as
          necessary".  Setting this to [k] makes each query arrive as
          [1 + k] back-to-back segments.  Extra segments hit the
          one-entry caches (hit ratios up to 67%), yet the PCBs
          searched {e per transaction} do not improve — experiment
          E20. *)
}

val default_config : ?warmup:float -> ?duration:float -> ?seed:int ->
  Analysis.Tpca_params.t -> config
(** TPC/A-compliant config from analytic parameters: truncated
    negative-exponential think time (mean [1/rate], cutoff ten times
    that), [Sampled] stagger.  Defaults: warmup one mean think time,
    duration 120 simulated seconds, seed 42. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> Report.t
(** Simulate and report.  [?obs] registers the demultiplexer's
    counters and examined-count histogram ({!Meter.create}) plus a
    ["sim.tpca.<algorithm>.txn_latency"] histogram of per-transaction virtual
    latency in microseconds over the measured window; [?tracer]
    receives the demultiplexer's hot-path events stamped in virtual
    seconds ({!Engine.clock}).
    @raise Invalid_argument on a non-positive user count or
    duration. *)
