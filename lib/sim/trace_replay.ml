type result = {
  report : Report.t;
  packets_total : int;
  packets_replayed : int;
  packets_skipped : int;
  flows_seen : int;
}

let classify_kind (segment : Packet.Segment.t) =
  let tcp = segment.Packet.Segment.tcp in
  let flags = tcp.Packet.Tcp_header.flags in
  if
    String.length segment.Packet.Segment.payload = 0
    && flags.Packet.Tcp_header.ack
    && (not flags.Packet.Tcp_header.syn)
    && not flags.Packet.Tcp_header.fin
  then Demux.Types.Pure_ack
  else Demux.Types.Data

let replay_records ?obs ?tracer ?(verify_checksum = true) records spec =
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  Meter.start_measuring meter;
  let replayed = ref 0 and skipped = ref 0 in
  List.iter
    (fun record ->
      match
        Packet.Segment.parse ~verify_checksum record.Packet.Pcap.data ~off:0
      with
      | Error _ -> incr skipped
      | Ok segment ->
        let flow = Packet.Segment.flow segment in
        if demux.Demux.Registry.lookup ~kind:(classify_kind segment) flow = None
        then begin
          (* First packet of a new flow: the lookup (a charged miss,
             as in a real stack) falls through to connection setup. *)
          ignore (demux.Demux.Registry.insert flow ())
        end;
        incr replayed)
    records;
  (* The meter above is bypassed (we need miss-tolerant lookups), so
     summarise from the demux's own aggregate statistics. *)
  let snapshot = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  let report =
    { Report.algorithm = demux.Demux.Registry.name; workload = "trace";
      packets = snapshot.Demux.Lookup_stats.lookups;
      overall_mean = Demux.Lookup_stats.mean_examined snapshot;
      entry_mean = Float.nan; ack_mean = Float.nan; overall_ci95 = Float.nan;
      hit_rate = Demux.Lookup_stats.hit_rate snapshot;
      max_examined = snapshot.Demux.Lookup_stats.max_examined }
  in
  { report; packets_total = List.length records; packets_replayed = !replayed;
    packets_skipped = !skipped; flows_seen = demux.Demux.Registry.length () }

let replay_file ?obs ?tracer ?verify_checksum path spec =
  match open_in_bin path with
  | exception Sys_error message -> Error message
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        match Packet.Pcap.read_all ic with
        | Error _ as e -> e
        | Ok records -> Ok (replay_records ?obs ?tracer ?verify_checksum records spec))
