(** Replay a packet trace (pcap) through a demultiplexer.

    The evaluation path for real-world captures: every TCP datagram in
    the file is parsed, its receiver-side flow computed, a PCB created
    on first sight of a flow (as the stack would after connection
    establishment), and the lookup metered with the usual accounting.
    Lets the paper's question — how many PCBs does {e your} traffic
    examine? — be asked of any capture. *)

type result = {
  report : Report.t;
  packets_total : int;      (** Records in the file. *)
  packets_replayed : int;   (** Valid TCP datagrams demultiplexed. *)
  packets_skipped : int;    (** Non-TCP / malformed / fragments. *)
  flows_seen : int;
}

val replay_records :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> ?verify_checksum:bool ->
  Packet.Pcap.record list -> Demux.Registry.spec -> result
(** Replay already-read records. *)

val replay_file :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> ?verify_checksum:bool ->
  string -> Demux.Registry.spec -> (result, string) Stdlib.result
(** Open, read and replay a pcap file. *)
