type config = {
  connections : int;
  trains : int;
  train_length : Numerics.Distribution.t;
  ack_every : int;
  seed : int;
}

let default_config ?(connections = 64) ?(trains = 2000) () =
  { connections; trains;
    (* Geometric failures-before-success with p = 1/16 has mean 15;
       the +1 below for the mandatory first segment makes 16. *)
    train_length = Numerics.Distribution.geometric ~p:(1.0 /. 16.0);
    ack_every = 2; seed = 42 }

let run ?obs ?tracer config spec =
  if config.connections <= 0 then
    invalid_arg "Trains_workload.run: connections <= 0";
  if config.trains <= 0 then invalid_arg "Trains_workload.run: trains <= 0";
  let rng = Numerics.Rng.create ~seed:config.seed in
  let demux = Demux.Registry.create spec in
  let meter = Meter.create ?obs ?tracer demux in
  let flows = Topology.flows config.connections in
  Array.iter (fun flow -> ignore (demux.Demux.Registry.insert flow ())) flows;
  Meter.start_measuring meter;
  for _ = 1 to config.trains do
    let connection = Numerics.Rng.int rng ~bound:config.connections in
    let flow = flows.(connection) in
    let length =
      1
      + int_of_float (Numerics.Distribution.sample config.train_length rng)
    in
    for segment = 1 to length do
      Meter.lookup meter ~kind:Demux.Types.Data flow;
      if config.ack_every > 0 && segment mod config.ack_every = 0 then
        Meter.note_send meter flow
    done
  done;
  Report.of_meter ~workload:"trains" meter
