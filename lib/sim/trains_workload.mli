(** Bulk-transfer packet trains (Jain & Routhier [JR86]; paper
    Section 1).

    Traffic arrives as back-to-back runs of segments on one
    connection before switching to another — the regime the BSD
    one-entry cache was built for: a train of length [k] gives it
    [k-1] hits.  Used for experiment E16, confirming the paper's
    claim that BSD performs well outside OLTP. *)

type config = {
  connections : int;
  trains : int;              (** Number of trains to deliver. *)
  train_length : Numerics.Distribution.t;
      (** Segments per train (values < 1 are treated as 1). *)
  ack_every : int;
      (** A transmit-side event fires after every [ack_every] data
          segments, modelling the acks a receiver returns mid-train;
          0 disables. *)
  seed : int;
}

val default_config : ?connections:int -> ?trains:int -> unit -> config
(** Defaults: 64 connections, 2000 trains, geometric train length with
    mean 16 segments (matching packet-train measurements), ack every
    2 segments. *)

val run :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t -> config ->
  Demux.Registry.spec -> Report.t
(** [?obs] and [?tracer] instrument the demultiplexer as in
    {!Meter.create}. *)
