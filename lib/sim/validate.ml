type row = {
  algorithm : string;
  predicted : float;
  simulated : float;
  ci95 : float;
  ratio : float;
}

let predicted_cost params (spec : Demux.Registry.spec) =
  match spec with
  | Demux.Registry.Bsd -> Some (Analysis.Bsd_model.cost params)
  | Demux.Registry.Linear ->
    (* No cache: every packet pays the mean scan (N+1)/2. *)
    let n = float_of_int params.Analysis.Tpca_params.users in
    Some ((n +. 1.0) /. 2.0)
  | Demux.Registry.Mtf -> Some (Analysis.Mtf_model.overall_cost params)
  | Demux.Registry.Sr_cache ->
    Some (Analysis.Srcache_model.overall_cost params)
  | Demux.Registry.Sequent { chains; _ } ->
    Some (Analysis.Sequent_model.cost params ~chains)
  | Demux.Registry.Conn_id _ -> Some 1.0
  | Demux.Registry.Lru_cache { entries } ->
    Some (Analysis.Lru_model.cost params ~entries)
  | Demux.Registry.Hashed_mtf _ | Demux.Registry.Resizing_hash
  | Demux.Registry.Splay | Demux.Registry.Cuckoo
  | Demux.Registry.Guarded _ ->
    None

let compare ?obs ?tracer ?config params specs =
  let config =
    match config with
    | Some c -> c
    | None -> Tpca_workload.default_config params
  in
  List.map
    (fun spec ->
      let report = Tpca_workload.run ?obs ?tracer config spec in
      let predicted =
        match predicted_cost params spec with
        | Some v -> v
        | None -> Float.nan
      in
      { algorithm = report.Report.algorithm; predicted;
        simulated = report.Report.overall_mean;
        ci95 = report.Report.overall_ci95;
        ratio = report.Report.overall_mean /. predicted })
    specs

let pp_rows ppf rows =
  Format.fprintf ppf "%-16s %12s %12s %10s %8s@." "algorithm" "predicted"
    "simulated" "+/-95%" "ratio";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %12.2f %12.2f %10.2f %8.3f@." r.algorithm
        r.predicted r.simulated r.ci95 r.ratio)
    rows
