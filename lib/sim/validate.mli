(** Simulation-vs-analysis cross-validation (experiment E14).

    The paper says its approximations "have been qualitatively
    confirmed by benchmarks"; here the benchmark is the discrete-event
    simulator driving the real data structures, and the comparison is
    quantitative. *)

type row = {
  algorithm : string;
  predicted : float;   (** Analytic expected PCBs examined per packet. *)
  simulated : float;   (** Simulated mean. *)
  ci95 : float;        (** Simulation confidence half-width. *)
  ratio : float;       (** simulated / predicted. *)
}

val predicted_cost :
  Analysis.Tpca_params.t -> Demux.Registry.spec -> float option
(** The paper's model for a spec, when one exists (BSD, linear, MTF,
    SR-cache, Sequent, conn-id); [None] for algorithms the paper does
    not model analytically. *)

val compare :
  ?obs:Obs.Registry.t -> ?tracer:Obs.Trace.t ->
  ?config:Tpca_workload.config -> Analysis.Tpca_params.t ->
  Demux.Registry.spec list -> row list
(** Run the TPC/A simulation for each spec and pair it with the
    analytic prediction.  [config] overrides the simulation settings
    derived from the parameters. *)

val pp_rows : Format.formatter -> row list -> unit
