(* A listener binding packed as one immediate int, so probing for a
   listener on the receive path allocates no constructor:

     wildcard (port only)  : port                      (bits 0-15)
     specific (addr, port) : 1 lsl 48 | addr lsl 16 | port

   The bit-48 discriminant keeps the two namespaces disjoint; 49
   significant bits fit an OCaml immediate int. *)
type binding = int

type ('conn, 'listener) t = {
  demux : 'conn Demux.Registry.t;
  listeners : (binding, 'listener) Hashtbl.t;
}

let create spec =
  { demux = Demux.Registry.create spec; listeners = Hashtbl.create 16 }

let demux t = t.demux

let specific_binding addr port =
  (1 lsl 48)
  lor ((Int32.to_int (Packet.Ipv4.addr_to_int32 addr) land 0xFFFFFFFF) lsl 16)
  lor port

let binding_of ?addr port =
  match addr with
  | Some addr -> specific_binding addr port
  | None -> port

let listen ?addr t ~port listener =
  if port < 0 || port > 0xFFFF then invalid_arg "Conn_table.listen: bad port";
  let binding = binding_of ?addr port in
  if Hashtbl.mem t.listeners binding then
    invalid_arg "Conn_table.listen: port already has a listener";
  Hashtbl.replace t.listeners binding listener

let unlisten ?addr t ~port = Hashtbl.remove t.listeners (binding_of ?addr port)

let listener ?addr t ~port =
  let specific =
    match addr with
    | Some addr -> Hashtbl.find_opt t.listeners (specific_binding addr port)
    | None -> None
  in
  match specific with
  | Some _ as found -> found
  | None -> Hashtbl.find_opt t.listeners port

let add_connection t flow conn = t.demux.Demux.Registry.insert flow conn

let remove_connection t flow =
  match t.demux.Demux.Registry.remove flow with
  | Some _ -> true
  | None -> false

type ('conn, 'listener) result =
  | Connection of 'conn Demux.Pcb.t
  | Listener of 'listener
  | No_match

let lookup t ?kind flow =
  match t.demux.Demux.Registry.lookup ?kind flow with
  | Some pcb -> Connection pcb
  | None -> (
    let local = flow.Packet.Flow.local in
    match
      listener ~addr:local.Packet.Flow.addr t ~port:local.Packet.Flow.port
    with
    | Some listener -> Listener listener
    | None -> No_match)

let note_send t flow = t.demux.Demux.Registry.note_send flow
let connections t = t.demux.Demux.Registry.length ()
