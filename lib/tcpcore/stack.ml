(* Event logging: quiet by default; enable with
   Logs.Src.set_level Stack.log_src (Some Logs.Debug). *)
let log_src = Logs.Src.create "tcpdemux.stack" ~doc:"TCP stack events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type connection = {
  flow : Packet.Flow.t;
  mutable state : State.t;
  mutable snd_nxt : int32;
  mutable rcv_nxt : int32;
  mutable snd_una : int32;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable unacked : (int32 * Packet.Segment.t) list;
      (* retransmission queue: (first sequence number, segment),
         oldest first *)
  mutable ack_pending : bool;
}

(* The stack-side view of pipeline overload.  Mirrors the tiers of the
   parallel pipeline's pressure controller without depending on it: the
   integration layer bridges the two with a closure
   ([set_overload_probe]), keeping tcpcore free of any domain/threading
   dependency. *)
type overload_tier = Normal | Shed_new_flows | Drop_batches | Reject

type listener = { on_data : t -> connection -> string -> unit }

and timer_event =
  | Reap_time_wait of connection
  | Retransmit of connection * int32 * int  (* attempt number, from 1 *)
  | Delayed_ack of connection

and drop_counters = {
  mutable parse_error : int;    (* malformed or checksum-failing bytes *)
  mutable wrong_destination : int;  (* well-formed but not addressed to us *)
  mutable handler_error : int;  (* segment processing raised; datagram shed *)
  mutable overload_shed_new_flow : int;  (* SYNs refused at Shed_new_flows *)
  mutable overload_drop_batch : int;  (* non-established shed at Drop_batches *)
  mutable overload_reject : int;  (* datagrams refused outright at Reject *)
}

and t = {
  local_addr : Packet.Ipv4.addr;
  mutable tracer : Obs.Trace.t;  (* Drop events; disabled by default. *)
  table : (connection, listener) Conn_table.t;
  mutable outbox : Packet.Segment.t list;  (* newest first; reversed on drain *)
  mutable next_iss : int32;
  iss_for : (Packet.Flow.t -> int32) option;
  mutable on_established : (t -> connection -> unit) option;
  (* Per-stage latency histograms (parse / demux / state), off by
     default: the receive path reads the clock only when attached. *)
  mutable stage_parse : Obs.Histogram.t option;
  mutable stage_demux : Obs.Histogram.t option;
  mutable stage_state : Obs.Histogram.t option;
  mutable segments_sent : int;
  mutable rsts_sent : int;
  mutable retransmissions : int;
  drops : drop_counters;
  time_wait_timeout : float;
  retransmit_timeout : float;
  max_retransmits : int;
  rto_jitter : bool;
  rto_rng : Numerics.Rng.t;
  delayed_acks : bool;
  delayed_ack_timeout : float;
  mutable overload_probe : unit -> overload_tier;
  wheel : timer_event Timer_wheel.t;
  time_wait_timers : Timer_wheel.timer Demux.Flow_table.t;
}

(* Sequence-number comparison with wraparound: a < b iff the signed
   32-bit difference is negative (RFC 793 window arithmetic). *)
let seq_lt a b = Int32.compare (Int32.sub a b) 0l < 0
let seq_leq a b = Int32.compare (Int32.sub a b) 0l <= 0

let create ?(demux =
             Demux.Registry.Sequent
               { chains = Demux.Sequent.default_chains;
                 hasher = Hashing.Hashers.multiplicative })
    ?(time_wait_timeout = 60.0) ?(retransmit_timeout = 1.0)
    ?(max_retransmits = 12) ?(rto_jitter = true) ?(rto_seed = 0x52544f)
    ?(delayed_acks = false) ?(delayed_ack_timeout = 0.2) ?iss ~local_addr () =
  if time_wait_timeout <= 0.0 then
    invalid_arg "Stack.create: time_wait_timeout <= 0";
  if retransmit_timeout <= 0.0 then
    invalid_arg "Stack.create: retransmit_timeout <= 0";
  if delayed_ack_timeout <= 0.0 then
    invalid_arg "Stack.create: delayed_ack_timeout <= 0";
  { local_addr; tracer = Obs.Trace.disabled;
    table = Conn_table.create demux; outbox = [];
    next_iss = 1000l; iss_for = iss; on_established = None;
    stage_parse = None; stage_demux = None; stage_state = None;
    segments_sent = 0; rsts_sent = 0; retransmissions = 0;
    drops =
      { parse_error = 0; wrong_destination = 0; handler_error = 0;
        overload_shed_new_flow = 0; overload_drop_batch = 0;
        overload_reject = 0 };
    time_wait_timeout; retransmit_timeout; max_retransmits;
    rto_jitter; rto_rng = Numerics.Rng.create ~seed:rto_seed;
    delayed_acks; delayed_ack_timeout;
    overload_probe = (fun () -> Normal);
    wheel = Timer_wheel.create ~tick:0.25 ();
    time_wait_timers = Demux.Flow_table.create 16 }

let set_overload_probe t probe = t.overload_probe <- probe
let set_on_established t hook = t.on_established <- hook

let set_stage_histograms t ~parse ~demux ~state =
  t.stage_parse <- parse;
  t.stage_demux <- demux;
  t.stage_state <- state

let local_addr t = t.local_addr

let fresh_iss t flow =
  match t.iss_for with
  | Some f -> f flow
  | None ->
    let iss = t.next_iss in
    (* Deterministic, well-spaced initial sequence numbers. *)
    t.next_iss <- Int32.add t.next_iss 64000l;
    iss

(* A per-flow ISS in the spirit of RFC 6528 minus the secret and the
   clock: a fixed mix of the 4-tuple.  What matters here is not
   off-path attack resistance but that a connection's ISS no longer
   depends on {e accept order}, so N per-core stacks accepting the
   same flows in any interleaving produce bit-identical sequence
   state — the property the cross-core lockstep tests pin. *)
let deterministic_iss flow =
  let word (ep : Packet.Flow.endpoint) =
    ((Int32.to_int (Packet.Ipv4.addr_to_int32 ep.Packet.Flow.addr)
      land 0xFFFFFFFF)
     lsl 16)
    lor ep.Packet.Flow.port
  in
  let mix h v =
    let h = (h lxor v) * 0x9E3779B1 in
    h lxor (h lsr 29)
  in
  let h =
    mix (mix 0x69737321 (word flow.Packet.Flow.local))
      (word flow.Packet.Flow.remote)
  in
  Int32.of_int (h land 0x3FFFFFFF)

let transmit t segment flow =
  t.outbox <- segment :: t.outbox;
  t.segments_sent <- t.segments_sent + 1;
  Conn_table.note_send t.table flow

let emit t ?(payload = "") ~flow ~flags ~seq ~ack_number () =
  let segment =
    Packet.Segment.make ~seq ~ack_number ~flags ~payload
      ~src:flow.Packet.Flow.local ~dst:flow.Packet.Flow.remote ()
  in
  transmit t segment flow;
  segment

(* Exponential RTO backoff: attempt [n] waits [2^(n-1)] base timeouts,
   capped at 64x (RFC 6298's doubling with BSD's traditional cap), so
   a peer that never acknowledges — or an induced-loss fault plan —
   cannot make the stack hammer the network at a constant rate.

   With [rto_jitter] (the default), the capped delay is full-jittered:
   attempt [n] waits [base + u * (capped - base)] for a fresh uniform
   [u], i.e. anywhere in [[base, capped]].  Without jitter, every host
   that lost the same burst retransmits on the same schedule, and the
   synchronized retry wave re-creates the overload that caused the
   loss; jittered, the wave decorrelates while the mean backoff still
   grows exponentially.  Draws come from the stack's own seeded
   generator, so a given stack's delay sequence is reproducible. *)
let rto_for_attempt t attempt =
  let capped = t.retransmit_timeout *. Float.of_int (1 lsl min 6 (attempt - 1)) in
  if (not t.rto_jitter) || attempt <= 1 then capped
  else
    t.retransmit_timeout
    +. (Numerics.Rng.float t.rto_rng *. (capped -. t.retransmit_timeout))

(* Queue a sequence-space-consuming segment (SYN, FIN or data) for
   retransmission and arm its RTO timer. *)
let emit_reliable t conn ?payload ~flags ~seq ~ack_number () =
  let segment = emit t ?payload ~flow:conn.flow ~flags ~seq ~ack_number () in
  conn.unacked <- conn.unacked @ [ (seq, segment) ];
  ignore
    (Timer_wheel.schedule t.wheel ~delay:(rto_for_attempt t 1)
       (Retransmit (conn, seq, 1)))

let emit_rst t ~flow ~seq ~ack_number =
  (* No PCB exists for this flow, so no transmit-side bookkeeping. *)
  let segment =
    Packet.Segment.make ~seq ~ack_number ~flags:Packet.Tcp_header.flag_rst
      ~src:flow.Packet.Flow.local ~dst:flow.Packet.Flow.remote ()
  in
  t.outbox <- segment :: t.outbox;
  t.segments_sent <- t.segments_sent + 1;
  t.rsts_sent <- t.rsts_sent + 1

let ack_now t conn =
  conn.ack_pending <- false;
  ignore
    (emit t ~flow:conn.flow ~flags:Packet.Tcp_header.flag_ack ~seq:conn.snd_nxt
       ~ack_number:conn.rcv_nxt ())

(* RFC 1122 delayed acknowledgement: ack every second data segment, or
   after delayed_ack_timeout, whichever comes first.  Sending data
   also piggybacks the ack (emit always carries rcv_nxt), which is the
   case the paper's footnote 2 describes. *)
let ack_data t conn =
  if not t.delayed_acks then ack_now t conn
  else if conn.ack_pending then ack_now t conn (* second segment: ack now *)
  else begin
    conn.ack_pending <- true;
    ignore
      (Timer_wheel.schedule t.wheel ~delay:t.delayed_ack_timeout
         (Delayed_ack conn))
  end

let listen t ~port ~on_data = Conn_table.listen t.table ~port { on_data }

let connect t ~local_port ~remote =
  let local = Packet.Flow.endpoint t.local_addr local_port in
  let flow = Packet.Flow.v ~local ~remote in
  let iss = fresh_iss t flow in
  let conn =
    { flow; state = State.Syn_sent; snd_nxt = Int32.add iss 1l;
      rcv_nxt = 0l; snd_una = iss; bytes_in = 0; bytes_out = 0; unacked = [];
      ack_pending = false }
  in
  ignore (Conn_table.add_connection t.table flow conn);
  emit_reliable t conn ~flags:Packet.Tcp_header.flag_syn ~seq:iss
    ~ack_number:0l ();
  conn

let send t conn payload =
  (match conn.state with
  | State.Established | State.Close_wait -> ()
  | state ->
    invalid_arg
      (Printf.sprintf "Stack.send: cannot send in %s" (State.to_string state)));
  conn.ack_pending <- false (* the data segment carries the ack *);
  emit_reliable t conn ~payload ~flags:Packet.Tcp_header.flag_psh_ack
    ~seq:conn.snd_nxt ~ack_number:conn.rcv_nxt ();
  conn.snd_nxt <- Int32.add conn.snd_nxt (Int32.of_int (String.length payload));
  conn.bytes_out <- conn.bytes_out + String.length payload

let close t conn =
  match State.transition conn.state State.Close with
  | None ->
    invalid_arg
      (Printf.sprintf "Stack.close: cannot close from %s"
         (State.to_string conn.state))
  | Some next ->
    emit_reliable t conn ~flags:Packet.Tcp_header.flag_fin_ack
      ~seq:conn.snd_nxt ~ack_number:conn.rcv_nxt ();
    conn.snd_nxt <- Int32.add conn.snd_nxt 1l (* FIN occupies a sequence slot *);
    conn.state <- next

let drop_connection t conn =
  Log.debug (fun m -> m "drop %s" (Packet.Flow.to_string conn.flow));
  conn.state <- State.Closed;
  conn.unacked <- [];
  (match Demux.Flow_table.find_opt t.time_wait_timers conn.flow with
  | Some timer ->
    ignore (Timer_wheel.cancel t.wheel timer);
    Demux.Flow_table.remove t.time_wait_timers conn.flow
  | None -> ());
  ignore (Conn_table.remove_connection t.table conn.flow)

(* Arm the 2MSL timer the first time a connection is seen in
   TIME-WAIT; re-arming on retransmitted FINs is harmless but
   wasteful, so membership is checked. *)
let maybe_arm_time_wait t conn =
  if
    State.equal conn.state State.Time_wait
    && not (Demux.Flow_table.mem t.time_wait_timers conn.flow)
  then begin
    let timer =
      Timer_wheel.schedule t.wheel ~delay:t.time_wait_timeout
        (Reap_time_wait conn)
    in
    Demux.Flow_table.replace t.time_wait_timers conn.flow timer
  end

(* ------------------------------------------------------------------ *)
(* Flow migration (shared-nothing handoff between per-core stacks)     *)

let extract_connection t flow =
  (* Removal goes through the registry's unmetered maintenance path
     (note_remove accounting, no examined charges) — the same table op
     a protocol close performs. *)
  match (Conn_table.demux t.table).Demux.Registry.remove flow with
  | None -> None
  | Some pcb ->
    let conn = pcb.Demux.Pcb.data in
    (match Demux.Flow_table.find_opt t.time_wait_timers flow with
    | Some timer ->
      ignore (Timer_wheel.cancel t.wheel timer);
      Demux.Flow_table.remove t.time_wait_timers flow
    | None -> ());
    (* Ship a fresh record and neutralize the original.  Pending wheel
       entries (RTO, delayed ack) still reference the original, and
       every timer path is a no-op on a Closed connection with an
       empty retransmission queue — so no timer on this stack can ever
       touch state that now lives on another domain. *)
    let copy =
      { flow = conn.flow; state = conn.state; snd_nxt = conn.snd_nxt;
        rcv_nxt = conn.rcv_nxt; snd_una = conn.snd_una;
        bytes_in = conn.bytes_in; bytes_out = conn.bytes_out;
        unacked = conn.unacked; ack_pending = conn.ack_pending }
    in
    conn.state <- State.Closed;
    conn.unacked <- [];
    conn.ack_pending <- false;
    Some copy

let adopt_connection t conn =
  if
    not
      (Packet.Ipv4.equal_addr conn.flow.Packet.Flow.local.Packet.Flow.addr
         t.local_addr)
  then invalid_arg "Stack.adopt_connection: flow is not addressed to this host";
  if State.equal conn.state State.Closed then
    invalid_arg "Stack.adopt_connection: connection is closed";
  ignore (Conn_table.add_connection t.table conn.flow conn);
  maybe_arm_time_wait t conn;
  (* Anything still unacknowledged gets a fresh first-attempt RTO on
     this stack's wheel (attempt 1 never consumes a jitter draw, so
     adoption stays deterministic). *)
  List.iter
    (fun (seq, _) ->
      ignore
        (Timer_wheel.schedule t.wheel ~delay:(rto_for_attempt t 1)
           (Retransmit (conn, seq, 1))))
    conn.unacked

(* Retransmission bookkeeping.  An arriving ACK advances snd_una and
   releases fully acknowledged segments from the queue; an expired RTO
   re-emits the oldest unacknowledged segment and re-arms. *)
let note_ack conn ack_number =
  if seq_lt conn.snd_una ack_number && seq_leq ack_number conn.snd_nxt then begin
    conn.snd_una <- ack_number;
    conn.unacked <-
      List.filter
        (fun (seq, segment) ->
          let consumed =
            let tcp = segment.Packet.Segment.tcp in
            String.length segment.Packet.Segment.payload
            + (if tcp.Packet.Tcp_header.flags.Packet.Tcp_header.syn then 1 else 0)
            + if tcp.Packet.Tcp_header.flags.Packet.Tcp_header.fin then 1 else 0
          in
          seq_lt ack_number (Int32.add seq (Int32.of_int consumed)))
        conn.unacked
  end

let handle_retransmit t conn seq attempt =
  if
    (not (State.equal conn.state State.Closed))
    && List.mem_assoc seq conn.unacked
    && attempt <= t.max_retransmits
    && t.retransmissions < t.max_retransmits * 64
    (* circuit breaker against pathological never-acked loops *)
  then begin
    let segment = List.assoc seq conn.unacked in
    Log.debug (fun m ->
        m "retransmit seq=%ld attempt=%d on %s" seq attempt
          (Packet.Flow.to_string conn.flow));
    t.retransmissions <- t.retransmissions + 1;
    transmit t segment conn.flow;
    ignore
      (Timer_wheel.schedule t.wheel
         ~delay:(rto_for_attempt t (attempt + 1))
         (Retransmit (conn, seq, attempt + 1)));
    true
  end
  else false

let advance_clock t ~now =
  let fired = Timer_wheel.advance t.wheel ~now in
  List.fold_left
    (fun actions (_, event) ->
      match event with
      | Reap_time_wait conn ->
        Demux.Flow_table.remove t.time_wait_timers conn.flow;
        if State.equal conn.state State.Time_wait then begin
          drop_connection t conn;
          actions + 1
        end
        else actions
      | Retransmit (conn, seq, attempt) ->
        if handle_retransmit t conn seq attempt then actions + 1 else actions
      | Delayed_ack conn ->
        if conn.ack_pending && not (State.equal conn.state State.Closed)
        then begin
          ack_now t conn;
          actions + 1
        end
        else actions)
    0 fired

let pending_time_wait t = Demux.Flow_table.length t.time_wait_timers

let expire_time_wait t conn =
  match State.transition conn.state State.Time_wait_expired with
  | Some State.Closed -> drop_connection t conn
  | Some _ | None ->
    invalid_arg "Stack.expire_time_wait: connection not in TIME-WAIT"

let connection_of_flow t flow =
  (* Maintenance-path lookup: walk the unmetered application view. *)
  let found = ref None in
  (Conn_table.demux t.table).Demux.Registry.iter (fun pcb ->
      if Packet.Flow.equal pcb.Demux.Pcb.flow flow then
        found := Some pcb.Demux.Pcb.data);
  !found

let iter_connections t f =
  (Conn_table.demux t.table).Demux.Registry.iter (fun pcb ->
      f pcb.Demux.Pcb.data)

let connection_count t = Conn_table.connections t.table
let demux_stats t = (Conn_table.demux t.table).Demux.Registry.stats
let segments_sent t = t.segments_sent
let rsts_sent t = t.rsts_sent
let retransmissions t = t.retransmissions

let poll_output t =
  let queued = List.rev t.outbox in
  t.outbox <- [];
  queued

let classify_kind (tcp : Packet.Tcp_header.t) payload =
  if
    String.length payload = 0
    && tcp.Packet.Tcp_header.flags.Packet.Tcp_header.ack
    && (not tcp.Packet.Tcp_header.flags.Packet.Tcp_header.syn)
    && not tcp.Packet.Tcp_header.flags.Packet.Tcp_header.fin
  then Demux.Types.Pure_ack
  else Demux.Types.Data

let apply_transition conn event =
  match State.transition conn.state event with
  | Some next ->
    conn.state <- next;
    true
  | None -> false

let deliver_data t conn (segment : Packet.Segment.t) =
  let payload = segment.Packet.Segment.payload in
  let seq = segment.Packet.Segment.tcp.Packet.Tcp_header.seq in
  if String.length payload > 0 then
    if Int32.equal seq conn.rcv_nxt then begin
      conn.rcv_nxt <-
        Int32.add conn.rcv_nxt (Int32.of_int (String.length payload));
      conn.bytes_in <- conn.bytes_in + String.length payload;
      ack_data t conn;
      match
        Conn_table.listener ~addr:conn.flow.Packet.Flow.local.Packet.Flow.addr
          t.table ~port:conn.flow.Packet.Flow.local.Packet.Flow.port
      with
      | Some { on_data } -> on_data t conn payload
      | None -> ()
    end
    else
      (* Out of order: re-assert what we expect (duplicate ACK). *)
      ack_now t conn

let handle_established t conn (segment : Packet.Segment.t) =
  let flags = segment.Packet.Segment.tcp.Packet.Tcp_header.flags in
  deliver_data t conn segment;
  if flags.Packet.Tcp_header.fin then begin
    conn.rcv_nxt <- Int32.add conn.rcv_nxt 1l;
    ignore (apply_transition conn State.Rcv_fin);
    ack_now t conn
  end

let acks_our_fin conn (tcp : Packet.Tcp_header.t) =
  tcp.Packet.Tcp_header.flags.Packet.Tcp_header.ack
  && Int32.equal tcp.Packet.Tcp_header.ack_number conn.snd_nxt

let handle_closing_states t conn (segment : Packet.Segment.t) =
  let tcp = segment.Packet.Segment.tcp in
  let flags = tcp.Packet.Tcp_header.flags in
  match conn.state with
  | State.Fin_wait_1 ->
    if flags.Packet.Tcp_header.fin && acks_our_fin conn tcp then begin
      conn.rcv_nxt <- Int32.add conn.rcv_nxt 1l;
      ignore (apply_transition conn State.Rcv_fin_ack);
      ack_now t conn
    end
    else if flags.Packet.Tcp_header.fin then begin
      conn.rcv_nxt <- Int32.add conn.rcv_nxt 1l;
      ignore (apply_transition conn State.Rcv_fin);
      ack_now t conn
    end
    else if acks_our_fin conn tcp then
      ignore (apply_transition conn State.Rcv_ack)
    else deliver_data t conn segment
  | State.Fin_wait_2 ->
    if flags.Packet.Tcp_header.fin then begin
      conn.rcv_nxt <- Int32.add conn.rcv_nxt 1l;
      ignore (apply_transition conn State.Rcv_fin);
      ack_now t conn
    end
    else deliver_data t conn segment
  | State.Closing ->
    if acks_our_fin conn tcp then ignore (apply_transition conn State.Rcv_ack)
  | State.Last_ack ->
    if acks_our_fin conn tcp then begin
      ignore (apply_transition conn State.Rcv_ack);
      drop_connection t conn
    end
  | State.Time_wait ->
    (* Retransmitted FIN: re-acknowledge. *)
    if flags.Packet.Tcp_header.fin then ack_now t conn
  | State.Closed | State.Listen | State.Syn_sent | State.Syn_received
  | State.Established | State.Close_wait ->
    ()

let handle_connection t conn (segment : Packet.Segment.t) =
  let tcp = segment.Packet.Segment.tcp in
  let flags = tcp.Packet.Tcp_header.flags in
  if flags.Packet.Tcp_header.ack && not flags.Packet.Tcp_header.rst then
    note_ack conn tcp.Packet.Tcp_header.ack_number;
  if flags.Packet.Tcp_header.rst then begin
    ignore (apply_transition conn State.Rcv_rst);
    drop_connection t conn
  end
  else
    match conn.state with
    | State.Syn_sent ->
      if flags.Packet.Tcp_header.syn && flags.Packet.Tcp_header.ack then begin
        conn.rcv_nxt <- Int32.add tcp.Packet.Tcp_header.seq 1l;
        ignore (apply_transition conn State.Rcv_syn_ack);
        ack_now t conn
      end
      else if flags.Packet.Tcp_header.syn then begin
        (* Simultaneous open. *)
        conn.rcv_nxt <- Int32.add tcp.Packet.Tcp_header.seq 1l;
        ignore (apply_transition conn State.Rcv_syn);
        ignore
          (emit t ~flow:conn.flow ~flags:Packet.Tcp_header.flag_syn_ack
             ~seq:(Int32.sub conn.snd_nxt 1l) ~ack_number:conn.rcv_nxt ())
      end
    | State.Syn_received ->
      if
        flags.Packet.Tcp_header.ack
        && Int32.equal tcp.Packet.Tcp_header.ack_number conn.snd_nxt
      then begin
        ignore (apply_transition conn State.Rcv_ack);
        (* The handshake ACK may carry data. *)
        handle_established t conn segment;
        (* Accept completion: the passive open reached a synchronized
           state.  Fired after the piggybacked data is delivered, so a
           hook that migrates the connection sees settled state. *)
        match t.on_established with
        | Some hook -> hook t conn
        | None -> ()
      end
    | State.Established | State.Close_wait -> handle_established t conn segment
    | State.Fin_wait_1 | State.Fin_wait_2 | State.Closing | State.Last_ack
    | State.Time_wait ->
      handle_closing_states t conn segment
    | State.Closed | State.Listen -> ()

let accept t flow (tcp : Packet.Tcp_header.t) =
  let iss = fresh_iss t flow in
  let conn =
    { flow; state = State.Syn_received;
      snd_nxt = Int32.add iss 1l;
      rcv_nxt = Int32.add tcp.Packet.Tcp_header.seq 1l;
      snd_una = iss; bytes_in = 0; bytes_out = 0; unacked = [];
      ack_pending = false }
  in
  ignore (Conn_table.add_connection t.table flow conn);
  Log.debug (fun m -> m "accept %s" (Packet.Flow.to_string flow));
  emit_reliable t conn ~flags:Packet.Tcp_header.flag_syn_ack ~seq:iss
    ~ack_number:conn.rcv_nxt ()

(* Overload sheds at segment granularity, attributed to the tier that
   caused them.  Tiers degrade from the edge inward: [Shed_new_flows]
   refuses only listener SYNs (silently — the peer's own RTO retries
   the open once pressure clears; an RST would hard-refuse it);
   [Drop_batches] additionally sheds everything that is not an
   established connection's traffic, including the RST courtesy for
   strays; [Reject] sheds the datagram before any demux work
   ([handle_bytes] short-circuits, and direct [handle_segment] callers
   are shed here). *)
let note_overload_drop t tier len =
  let code =
    match tier with
    | Shed_new_flows ->
      t.drops.overload_shed_new_flow <- t.drops.overload_shed_new_flow + 1;
      3
    | Drop_batches ->
      t.drops.overload_drop_batch <- t.drops.overload_drop_batch + 1;
      4
    | Normal | Reject ->
      t.drops.overload_reject <- t.drops.overload_reject + 1;
      5
  in
  Obs.Trace.record t.tracer Obs.Trace.Drop code len

let handle_segment t (segment : Packet.Segment.t) =
  match t.overload_probe () with
  | Reject ->
    note_overload_drop t Reject
      (String.length segment.Packet.Segment.payload)
  | tier ->
    let tcp = segment.Packet.Segment.tcp in
    let flags = tcp.Packet.Tcp_header.flags in
    let flow = Packet.Segment.flow segment in
    let kind = classify_kind tcp segment.Packet.Segment.payload in
    let payload_len = String.length segment.Packet.Segment.payload in
    let timing = t.stage_demux <> None || t.stage_state <> None in
    let demux_t0 = if timing then Obs.Clock.now_ns () else 0 in
    let result = Conn_table.lookup t.table ~kind flow in
    let state_t0 =
      if not timing then 0
      else begin
        let now = Obs.Clock.now_ns () in
        (match t.stage_demux with
        | Some h -> Obs.Histogram.record h (now - demux_t0)
        | None -> ());
        now
      end
    in
    (match result with
    | Conn_table.Connection pcb ->
      let conn = pcb.Demux.Pcb.data in
      handle_connection t conn segment;
      maybe_arm_time_wait t conn
    | Conn_table.Listener _ when flags.Packet.Tcp_header.syn
                                 && not flags.Packet.Tcp_header.ack -> (
      match tier with
      | Normal -> accept t flow tcp
      | Shed_new_flows -> note_overload_drop t Shed_new_flows payload_len
      | Drop_batches -> note_overload_drop t Drop_batches payload_len
      | Reject -> assert false (* handled above *))
    | Conn_table.Listener _ | Conn_table.No_match ->
      if tier = Drop_batches then note_overload_drop t Drop_batches payload_len
      else if not flags.Packet.Tcp_header.rst then
        emit_rst t ~flow ~seq:0l
          ~ack_number:(Int32.add tcp.Packet.Tcp_header.seq 1l));
    match t.stage_state with
    | Some h -> Obs.Histogram.record h (Obs.Clock.now_ns () - state_t0)
    | None -> ()

(* Attacker-controlled bytes: never raise.  Anything that cannot be
   processed is shed and attributed to a named counter. *)
let handle_bytes t buf =
  match t.overload_probe () with
  | Reject ->
    (* The point of the top tier is to spend nothing per datagram:
       shed before even parsing. *)
    note_overload_drop t Reject (Bytes.length buf);
    Error "stack: overloaded; datagram rejected"
  | Normal | Shed_new_flows | Drop_batches -> (
  let parse_t0 =
    match t.stage_parse with None -> 0 | Some _ -> Obs.Clock.now_ns ()
  in
  let parsed = Packet.Segment.parse buf ~off:0 in
  (match t.stage_parse with
  | Some h -> Obs.Histogram.record h (Obs.Clock.now_ns () - parse_t0)
  | None -> ());
  match parsed with
  | Error reason ->
    t.drops.parse_error <- t.drops.parse_error + 1;
    Obs.Trace.record t.tracer Obs.Trace.Drop 0 (Bytes.length buf);
    Error reason
  | Ok segment ->
    if Packet.Ipv4.equal_addr segment.Packet.Segment.ip.Packet.Ipv4.dst t.local_addr
    then
      match handle_segment t segment with
      | () -> Ok ()
      | exception exn ->
        t.drops.handler_error <- t.drops.handler_error + 1;
        Obs.Trace.record t.tracer Obs.Trace.Drop 2 (Bytes.length buf);
        Log.debug (fun m ->
            m "segment handler raised %s; datagram shed"
              (Printexc.to_string exn));
        Error ("stack: segment handler failed: " ^ Printexc.to_string exn)
    else begin
      t.drops.wrong_destination <- t.drops.wrong_destination + 1;
      Obs.Trace.record t.tracer Obs.Trace.Drop 1 (Bytes.length buf);
      Error "stack: datagram not addressed to this host"
    end)

let drop_reasons =
  [ "parse-error"; "wrong-destination"; "handler-error";
    "overload-shed-new-flow"; "overload-drop-batch"; "overload-reject" ]

let drop_reason_of_code code = List.nth_opt drop_reasons code

let drop_counts t =
  [ ("parse-error", t.drops.parse_error);
    ("wrong-destination", t.drops.wrong_destination);
    ("handler-error", t.drops.handler_error);
    ("overload-shed-new-flow", t.drops.overload_shed_new_flow);
    ("overload-drop-batch", t.drops.overload_drop_batch);
    ("overload-reject", t.drops.overload_reject) ]

let drops_total t =
  t.drops.parse_error + t.drops.wrong_destination + t.drops.handler_error
  + t.drops.overload_shed_new_flow + t.drops.overload_drop_batch
  + t.drops.overload_reject

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let set_tracer t tracer =
  t.tracer <- tracer;
  Demux.Lookup_stats.set_tracer (demux_stats t) tracer

let register_obs ?(prefix = "stack") t obs =
  let name suffix = prefix ^ "." ^ suffix in
  List.iter
    (fun reason ->
      Obs.Registry.register_counter obs
        ~help:("datagrams shed by handle_bytes: " ^ reason)
        ~name:(name ("drops." ^ reason))
        (fun () -> List.assoc reason (drop_counts t)))
    drop_reasons;
  Obs.Registry.register_counter obs ~help:"datagrams shed by handle_bytes"
    ~name:(name "drops.total") (fun () -> drops_total t);
  Obs.Registry.register_counter obs ~help:"segments transmitted"
    ~name:(name "segments_sent") (fun () -> t.segments_sent);
  Obs.Registry.register_counter obs ~help:"RST segments transmitted"
    ~name:(name "rsts_sent") (fun () -> t.rsts_sent);
  Obs.Registry.register_counter obs
    ~help:"segments re-sent by the RTO timer"
    ~name:(name "retransmissions") (fun () -> t.retransmissions);
  Obs.Registry.register_gauge obs ~help:"connections resident"
    ~name:(name "connections")
    (fun () -> float_of_int (connection_count t));
  Obs.Registry.register_gauge obs
    ~help:"TIME-WAIT connections awaiting reaping"
    ~name:(name "time_wait_pending")
    (fun () -> float_of_int (pending_time_wait t));
  Demux.Registry.observe ~prefix:(name "demux") obs (Conn_table.demux t.table)
