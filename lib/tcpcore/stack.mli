(** A minimal TCP segment-processing engine.

    Enough of a stack to drive every demultiplexing algorithm with
    real wire-format segments: passive and active opens, in-order data
    delivery with cumulative acknowledgements, RTO retransmission of
    SYN/FIN/data via a timing wheel with exponential backoff,
    TIME-WAIT reaping, orderly close, and RST for segments that match
    no socket.
    Out of scope (documented in DESIGN.md): adaptive RTO estimation,
    congestion control, flow-control windows, urgent data — none of
    which affect PCB lookup, which is what this library studies.

    The stack is push-driven and owns no I/O: callers feed segments in
    with {!handle_segment} / {!handle_bytes} and drain replies with
    {!poll_output}. *)

type t

val log_src : Logs.src
(** Log source ["tcpdemux.stack"]; connection events at debug level. *)

type connection = {
  flow : Packet.Flow.t;
  mutable state : State.t;
  mutable snd_nxt : int32;   (** Next sequence number we will send. *)
  mutable rcv_nxt : int32;   (** Next sequence number we expect. *)
  mutable snd_una : int32;   (** Oldest unacknowledged sequence number. *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable unacked : (int32 * Packet.Segment.t) list;
      (** Retransmission queue, oldest first: sequence-space-consuming
          segments (SYN, FIN, data) not yet covered by [snd_una]. *)
  mutable ack_pending : bool;
      (** A delayed acknowledgement is owed (see [delayed_acks]). *)
}

val create :
  ?demux:Demux.Registry.spec -> ?time_wait_timeout:float ->
  ?retransmit_timeout:float -> ?max_retransmits:int ->
  ?rto_jitter:bool -> ?rto_seed:int ->
  ?delayed_acks:bool -> ?delayed_ack_timeout:float ->
  ?iss:(Packet.Flow.t -> int32) ->
  local_addr:Packet.Ipv4.addr -> unit -> t
(** A host at [local_addr].  Default demultiplexer: the Sequent
    algorithm with 19 chains.  [time_wait_timeout] is the 2MSL reaping
    delay used by {!advance_clock} (default 60 s);
    [retransmit_timeout] is the base RTO for SYN/FIN/data segments
    (default 1 s; no adaptive estimation — out of scope per DESIGN.md
    — but each unanswered retransmission backs off exponentially,
    capped at 64x, and a segment is abandoned after [max_retransmits]
    attempts).  With [rto_jitter] (default [true]) each backoff delay
    is {e full-jittered}: attempt [n] waits a uniform draw from
    [[base, min(base * 2^(n-1), base * 64)]], so hosts that lost the
    same burst do not retransmit in a synchronized wave that re-creates
    the overload; draws come from a generator seeded with [rto_seed]
    (fixed default), so a stack's delay sequence is deterministic.
    Pass [~rto_jitter:false] for the exact classic doubling schedule.
    With [delayed_acks] (default false) data is
    acknowledged RFC 1122-style: every second segment, after
    [delayed_ack_timeout] (default 200 ms, fired by
    {!advance_clock}), or piggybacked on outbound data — the
    mechanism the paper's footnote 2 appeals to.
    [iss] overrides initial-sequence-number assignment with a per-flow
    function (see {!deterministic_iss}); by default each open draws
    from a per-stack counter, which makes ISS depend on accept order.
    @raise Invalid_argument on non-positive timeouts. *)

val deterministic_iss : Packet.Flow.t -> int32
(** A fixed mix of the 4-tuple (RFC 6528 minus the secret and clock):
    with [~iss:deterministic_iss], a connection's sequence state no
    longer depends on the order the stack accepted its neighbours, so
    N per-core stacks accepting the same flows in any interleaving
    produce bit-identical [snd_*] fields — what the cross-core
    lockstep tests compare. *)

val rto_for_attempt : t -> int -> float
(** The delay armed before retransmission attempt [n >= 1] (attempt 1
    is the initial send's timer).  Without jitter this is the pure
    capped exponential; with jitter it consumes one draw from the
    stack's generator per call, exactly as the retransmission path
    does — exposed so tests can audit the bounds and determinism of
    the schedule. *)

val local_addr : t -> Packet.Ipv4.addr

val listen : t -> port:int -> on_data:(t -> connection -> string -> unit) -> unit
(** Accept connections on [port]; [on_data] fires for each in-order
    data segment delivered on an accepted connection.
    @raise Invalid_argument if the port is busy. *)

val connect : t -> local_port:int -> remote:Packet.Flow.endpoint -> connection
(** Active open: emits a SYN and returns the new connection in
    [Syn_sent].
    @raise Invalid_argument if the flow already exists. *)

val send : t -> connection -> string -> unit
(** Queue a data segment on an established connection.
    @raise Invalid_argument unless the connection can carry data
    ([Established] or [Close_wait]). *)

val close : t -> connection -> unit
(** Orderly close: emits FIN.
    @raise Invalid_argument if the connection cannot close from its
    current state. *)

val handle_segment : t -> Packet.Segment.t -> unit
(** Process one received segment: demultiplex (metered), advance the
    state machine, queue any replies. *)

val handle_bytes : t -> bytes -> (unit, string) result
(** Parse a raw datagram (checksums verified) and process it.  Never
    raises, whatever the bytes: malformed input, datagrams for other
    hosts, and segments whose processing fails are shed, counted under
    a named counter ({!drop_counts}), and reported as [Error]. *)

val drop_counts : t -> (string * int) list
(** Segments and datagrams shed since creation, by reason:
    ["parse-error"], ["wrong-destination"] and ["handler-error"] from
    {!handle_bytes}'s input validation, plus the overload tiers'
    named reasons — ["overload-shed-new-flow"] (listener SYNs refused
    at {!Shed_new_flows}), ["overload-drop-batch"] (non-established
    traffic shed at {!Drop_batches}) and ["overload-reject"]
    (datagrams refused outright at {!Reject}). *)

val drops_total : t -> int
(** Sum of {!drop_counts}. *)

val drop_reasons : string list
(** The {!drop_counts} keys, in drop-code order: code [i] in a traced
    [Drop] event names reason [List.nth drop_reasons i]. *)

(** {1 Overload degradation}

    The parallel pipeline's pressure controller
    ({!Parallel.Pressure}) lives above this library; the stack sees
    its tier through a closure, keeping tcpcore dependency-free.  Each
    tier maps onto a named drop reason (see {!drop_counts}). *)

type overload_tier = Normal | Shed_new_flows | Drop_batches | Reject
(** Mirror of [Parallel.Pressure.tier], in severity order. *)

val set_overload_probe : t -> (unit -> overload_tier) -> unit
(** Install the tier source consulted on every inbound datagram and
    segment (default: always {!Normal}).  At {!Shed_new_flows},
    listener SYNs are shed silently (the peer's RTO retries the open;
    no RST).  At {!Drop_batches}, everything except established
    connections' traffic is shed, including the RST courtesy for
    strays.  At {!Reject}, {!handle_bytes} sheds before parsing and
    {!handle_segment} before demultiplexing.  Every shed is counted
    under its tier's reason and traced as a [Drop] event. *)

val drop_reason_of_code : int -> string option
(** Decode a traced [Drop] event's payload [a] back to its reason. *)

val set_stage_histograms :
  t ->
  parse:Obs.Histogram.t option ->
  demux:Obs.Histogram.t option ->
  state:Obs.Histogram.t option ->
  unit
(** Attach per-stage latency histograms (nanoseconds): [parse] times
    {!Packet.Segment.parse} inside {!handle_bytes}, [demux] the
    metered PCB lookup inside {!handle_segment}, [state] the rest of
    segment processing (state machine + reply emission).  All three
    default to detached, in which case the receive path never reads
    the clock. *)

val set_tracer : t -> Obs.Trace.t -> unit
(** Attach a tracer to both the stack ([Drop] events, payload: reason
    code and datagram length) and its demultiplexer's
    {!Demux.Lookup_stats}, so one event stream interleaves drops with
    lookups.  Pass {!Obs.Trace.disabled} to detach. *)

val register_obs : ?prefix:string -> t -> Obs.Registry.t -> unit
(** Register the stack's accounting into an observability registry
    under ["<prefix>."] (default ["stack"]): per-reason and total drop
    counters, [segments_sent] / [rsts_sent] / [retransmissions],
    connection-population gauges, and — via {!Demux.Registry.observe}
    under ["<prefix>.demux"] — the demultiplexer's lookup counters and
    examined-count histogram. *)

val poll_output : t -> Packet.Segment.t list
(** Drain queued outbound segments, oldest first.  Transmit-side demux
    bookkeeping ({!Demux.Registry.t.note_send}) has already run. *)

val expire_time_wait : t -> connection -> unit
(** Fire the 2MSL timer by hand: a [Time_wait] connection is removed.
    @raise Invalid_argument if the connection is not in TIME-WAIT. *)

val advance_clock : t -> now:float -> int
(** Drive the stack's {!Timer_wheel}: connections that entered
    TIME-WAIT more than the 2MSL timeout before [now] are reaped, and
    unacknowledged SYN/FIN/data segments whose RTO has elapsed are
    retransmitted (and re-armed with exponentially longer timeouts,
    up to [max_retransmits] attempts).  Returns the number of effective
    actions (reaps + retransmissions); timers made moot by later acks
    fire silently.  The caller owns the clock (wall time, simulated
    time, ...); time starts at 0.
    @raise Invalid_argument if [now] moves backwards. *)

val pending_time_wait : t -> int
(** TIME-WAIT connections currently awaiting reaping. *)

val retransmissions : t -> int
(** Segments re-sent by the RTO timer since the stack was created. *)

val connection_of_flow : t -> Packet.Flow.t -> connection option
(** Uncharged lookup for applications that track their peers. *)

val iter_connections : t -> (connection -> unit) -> unit
(** Visit every resident connection (unmetered maintenance view), in
    no particular order. *)

(** {1 Flow migration}

    The shared-nothing handoff primitive: a listener core completes
    the handshake, {!extract_connection} detaches the connection from
    its table and timers, the connection record travels to the owning
    core (over an SPSC ring in {!Parallel.Smp}), and
    {!adopt_connection} installs it there.  Extraction ships a {e
    fresh} record and neutralizes the original (Closed, empty
    retransmission queue), so timers still pending on the old core's
    wheel can never touch state that now lives on another domain. *)

val set_on_established : t -> (t -> connection -> unit) option -> unit
(** Hook fired when a {e passive} open completes its handshake (the
    ACK of our SYN-ACK arrives), after any piggybacked data has been
    delivered.  This is where a steering layer decides whether to
    migrate the accepted connection to another core.  The hook runs
    inside segment processing: it must not reenter the stack for this
    segment (defer table mutations to after {!handle_bytes} returns). *)

val extract_connection : t -> Packet.Flow.t -> connection option
(** Detach the connection for handoff: remove it from the demux table
    (unmetered maintenance removal, counted as a remove in
    {!demux_stats}), cancel its 2MSL timer if armed, and return a
    fresh copy of the record; the original is closed and emptied so
    pending RTO / delayed-ack timers on this stack fire as no-ops.
    [None] if the flow is not resident. *)

val adopt_connection : t -> connection -> unit
(** Install an extracted connection into this stack: demux-table
    insert (counted), re-arm 2MSL if the connection is in TIME-WAIT
    and a first-attempt RTO for each still-unacknowledged segment.
    @raise Invalid_argument if the connection is [Closed] or its local
    address is not this stack's. *)

val connection_count : t -> int
val demux_stats : t -> Demux.Lookup_stats.t
val segments_sent : t -> int
val rsts_sent : t -> int
