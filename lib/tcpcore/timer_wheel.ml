type 'a entry = {
  id : int;
  deadline : float;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a t = {
  slots : 'a entry list array; (* unordered within a slot *)
  tick : float;
  mutable clock : float;
  mutable cursor : int;        (* slot the clock currently sits in *)
  mutable next_id : int;
  mutable live : int;
  by_id : (int, 'a entry) Hashtbl.t;
  mutable owner : int option;  (* domain that claimed the wheel *)
}

type timer = int

let create ?(slot_count = 256) ~tick () =
  if tick <= 0.0 then invalid_arg "Timer_wheel.create: tick <= 0";
  if slot_count <= 0 then invalid_arg "Timer_wheel.create: slot_count <= 0";
  { slots = Array.make slot_count []; tick; clock = 0.0; cursor = 0;
    next_id = 0; live = 0; by_id = Hashtbl.create 64; owner = None }

let now t = t.clock

let owner t = t.owner

(* Single-domain ownership: the first mutating operation claims the
   wheel for the calling domain; any later mutation from a different
   domain is a steering bug upstream (a connection's timers being
   driven from a core that does not own its stack) and must fail loudly
   — the silent alternative is two domains concurrently rewriting the
   same slot lists. *)
let claim t op =
  let self = (Domain.self () :> int) in
  match t.owner with
  | None -> t.owner <- Some self
  | Some id when id = self -> ()
  | Some id ->
    invalid_arg
      (Printf.sprintf
         "Timer_wheel.%s: wheel is owned by domain %d but was called \
          from domain %d (mis-steered timer)"
         op id self)

let slot_of t deadline =
  int_of_float (Float.floor (deadline /. t.tick)) mod Array.length t.slots

let schedule t ~delay payload =
  claim t "schedule";
  if Float.is_nan delay || delay < 0.0 then
    invalid_arg "Timer_wheel.schedule: negative or NaN delay";
  let deadline = t.clock +. delay in
  let entry = { id = t.next_id; deadline; payload; cancelled = false } in
  t.next_id <- t.next_id + 1;
  let slot = slot_of t deadline in
  t.slots.(slot) <- entry :: t.slots.(slot);
  Hashtbl.replace t.by_id entry.id entry;
  t.live <- t.live + 1;
  entry.id

let cancel t id =
  claim t "cancel";
  match Hashtbl.find_opt t.by_id id with
  | Some entry when not entry.cancelled ->
    entry.cancelled <- true;
    Hashtbl.remove t.by_id id;
    t.live <- t.live - 1;
    true
  | Some _ | None -> false

let advance t ~now =
  claim t "advance";
  if Float.is_nan now || now < t.clock then
    invalid_arg "Timer_wheel.advance: clock cannot move backwards";
  let slot_count = Array.length t.slots in
  let target_index = int_of_float (Float.floor (now /. t.tick)) in
  let current_index = int_of_float (Float.floor (t.clock /. t.tick)) in
  (* Visit every slot the clock passes, inclusive of both endpoints:
     the loop below runs [steps + 1] iterations, covering the current
     slot (entries due within the tick the clock sits in) through the
     target slot.  An advance of a full revolution or more must visit
     each of the [slot_count] slots exactly once, so the clamp is
     [slot_count - 1] — clamping to [slot_count] would revisit the
     starting slot a second time. *)
  let steps = min (target_index - current_index) (slot_count - 1) in
  let fired = ref [] in
  let visit slot =
    let due, remaining =
      List.partition (fun e -> (not e.cancelled) && e.deadline <= now)
        t.slots.(slot)
    in
    (* Drop cancelled entries while we are here. *)
    let remaining = List.filter (fun e -> not e.cancelled) remaining in
    t.slots.(slot) <- remaining;
    List.iter
      (fun e ->
        Hashtbl.remove t.by_id e.id;
        t.live <- t.live - 1;
        fired := e :: !fired)
      due
  in
  for i = 0 to steps do
    visit ((current_index + i) mod slot_count)
  done;
  t.clock <- now;
  t.cursor <- target_index mod slot_count;
  !fired
  |> List.sort (fun a b ->
         match Float.compare a.deadline b.deadline with
         | 0 -> Int.compare a.id b.id
         | c -> c)
  |> List.map (fun e -> (e.deadline, e.payload))

let pending t = t.live
