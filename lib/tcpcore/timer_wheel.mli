(** Hashed timing wheel (Varghese & Lauck 1987) — the timer substrate
    a real TCP needs for 2MSL, retransmission and delayed-ack timers.
    Here it drives TIME-WAIT reaping in {!Stack}, keeping PCB removal
    on the same unmetered maintenance path the paper assumes.

    Timers hash into [slot_count] buckets of width [tick] seconds;
    {!advance} walks the buckets the clock has passed and fires due
    timers in deadline order.  Schedule and cancel are O(1); advance
    is O(buckets passed + timers fired).

    A wheel is {e single-domain}: the first call to {!schedule},
    {!cancel} or {!advance} claims it for the calling domain, and any
    later mutation from a different domain raises [Invalid_argument].
    In a shared-nothing deployment ({!Parallel.Smp}) each per-core
    stack owns its wheel, so a mis-steered timer — a connection whose
    timers are driven from a core that does not own its stack — fires
    an error instead of silently corrupting another core's slot
    lists. *)

type 'a t

type timer
(** Handle for cancellation.  Never reused. *)

val create : ?slot_count:int -> tick:float -> unit -> 'a t
(** A wheel starting at time 0.  Defaults: 256 slots.
    @raise Invalid_argument if [tick <= 0] or [slot_count <= 0]. *)

val now : 'a t -> float
(** The wheel's clock: the last time passed to {!advance}. *)

val owner : 'a t -> int option
(** The domain id that claimed this wheel with its first mutating
    operation, or [None] for a wheel never yet scheduled against. *)

val schedule : 'a t -> delay:float -> 'a -> timer
(** Fire [delay] seconds from {!now} (delays shorter than one tick
    fire on the next advance).
    @raise Invalid_argument if [delay] is negative or NaN, or if the
    wheel is owned by a different domain. *)

val cancel : 'a t -> timer -> bool
(** True if the timer was still pending (and is now cancelled).
    @raise Invalid_argument if the wheel is owned by a different
    domain. *)

val advance : 'a t -> now:float -> (float * 'a) list
(** Move the clock forward and return fired timers as
    [(deadline, payload)] in deadline order.
    @raise Invalid_argument if [now] is behind the wheel's clock, or
    if the wheel is owned by a different domain. *)

val pending : 'a t -> int
(** Timers scheduled and not yet fired or cancelled. *)
