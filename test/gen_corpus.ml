(* Regenerates the pinned regression programs in test/corpus/.

   Run `dune exec test/gen_corpus.exe -- test/corpus` from the repo
   root after changing a generator, then commit the diff — the corpus
   is pinned precisely so that generator drift shows up in review, so
   never regenerate casually (see test/corpus/README.md). *)

let op kind flow = { Check.Op.kind; flow }

(* Five flows whose Flat_table home slots coincide at the minimum
   capacity (mask 7): inserting them builds a Robin-Hood displacement
   cluster, and removing from its middle forces the backward shift the
   planted Buggy_table skips. *)
let robin_hood () =
  let mask = 7 in
  let home flow =
    Demux.Flow_key.hash_words
      (Demux.Flow_key.w0_of_flow flow)
      (Demux.Flow_key.w1_of_flow flow)
    land mask
  in
  let rec collect acc slot i =
    if List.length acc = 5 then List.rev acc
    else
      let flow = Sim.Topology.flow_of_client i in
      match slot with
      | None -> collect [ flow ] (Some (home flow)) (i + 1)
      | Some s ->
        if home flow = s then collect (flow :: acc) slot (i + 1)
        else collect acc slot (i + 1)
  in
  let cluster = collect [] None 0 in
  let inserts = List.map (op Check.Op.Insert) cluster in
  let lookups = List.map (op Check.Op.Lookup) cluster in
  let removes = [ op Check.Op.Remove (List.nth cluster 0);
                  op Check.Op.Remove (List.nth cluster 2) ] in
  Check.Op.v ~label:"robin-hood-backward-shift" ~seed:0
    (Array.of_list
       (inserts @ lookups @ [ List.nth removes 0 ] @ lookups
       @ [ List.nth removes 1 ] @ lookups))

(* Forty flows all reducing to chain 0 of the default Sequent
   geometry: past max_chain = 32 the overload guard starts shedding,
   so replaying this against guarded-* exercises eviction-set
   prediction, and against everything else it is plain churn. *)
let guarded_eviction () =
  let flows =
    Array.to_list (Check.Fuzz.flow_pool Check.Fuzz.Colliding ~seed:3 ~size:40)
  in
  let first_ten = List.filteri (fun i _ -> i < 10) flows in
  let inserts = List.map (op Check.Op.Insert) flows in
  let lookups = List.map (op Check.Op.Lookup) flows in
  Check.Op.v ~label:"guarded-eviction" ~seed:3
    (Array.of_list
       (inserts @ lookups
       @ List.map (op Check.Op.Remove) first_ten
       @ lookups
       @ List.map (op Check.Op.Insert) first_ten
       @ lookups))

(* Churn across the flat table's incremental-resize boundaries.  From
   the 8-slot minimum the 7/8 trigger fires as the population reaches
   8, 15 and 29; this program crosses all three with removes, misses
   and re-inserts landing while the old region is still draining.  In
   particular each boundary is followed immediately by a remove of a
   flow that is still resident in the old region and (for two of
   them) a re-insert of the same flow — the exact sequence that would
   resurrect a stale binding if a drained or removed old-region slot
   could ever match a later probe. *)
let churn_resize () =
  let flow i = Sim.Topology.flow_of_client i in
  let insert i = op Check.Op.Insert (flow i) in
  let lookup i = op Check.Op.Lookup (flow i) in
  let remove i = op Check.Op.Remove (flow i) in
  let range a b f = List.init (b - a + 1) (fun k -> f (a + k)) in
  let ops =
    (* population 0 -> 7, then the 8th insert fires trigger #1 *)
    range 0 6 insert
    @ [ lookup 3; insert 7;
        (* old region (capacity 8) still draining: *)
        remove 0; lookup 0; insert 0; lookup 0;
        lookup 5 ]
    (* population 8 -> 14, the 15th fires trigger #2 *)
    @ range 8 13 insert
    @ [ insert 14;
        (* old region (capacity 16) still draining: *)
        remove 2; remove 9; lookup 2; lookup 9; insert 2; lookup 2 ]
    (* population 14 -> 28, the 29th fires trigger #3 *)
    @ range 15 28 insert
    @ [ lookup 20; insert 29;
        (* old region (capacity 32) still draining: *)
        remove 17; lookup 17; remove 4; insert 17; lookup 17 ]
    (* sweep every flow: hits, and misses for 4 and 9 *)
    @ range 0 29 lookup
  in
  Check.Op.v ~label:"churn-resize" ~seed:6 (Array.of_list ops)

(* The epoch-reclaim scenario, single-threaded half: churn that drives
   the epoch table through every copy-publish-retire growth cycle
   (populations 8, 15, 29 from the 8-slot minimum) with removes,
   misses and re-inserts landing between publishes.  The first seven
   ops are plain inserts on purpose: test_check.ml replays this
   program twice — once through the differential oracle like any
   corpus entry, and once onto a bare Epoch.Table with a view pinned
   after op 7, the reader that outlives every region the writer
   retires.  Flows are offset from churn_resize's so the two programs
   stay distinguishable in a diff. *)
let epoch_reclaim () =
  let flow i = Sim.Topology.flow_of_client (100 + i) in
  let insert i = op Check.Op.Insert (flow i) in
  let lookup i = op Check.Op.Lookup (flow i) in
  let remove i = op Check.Op.Remove (flow i) in
  let range a b f = List.init (b - a + 1) (fun k -> f (a + k)) in
  let ops =
    (* seven inserts: one capacity-8 region, the pin point *)
    range 0 6 insert
    (* the 8th insert fires growth #1; churn while the pinned reader
       still holds the pre-growth region *)
    @ [ insert 7; remove 1; lookup 1; insert 1; lookup 1 ]
    (* population 8 -> 14, the 15th fires growth #2 *)
    @ range 8 13 insert
    @ [ insert 14; remove 3; remove 10; lookup 3; lookup 10; insert 3 ]
    (* population 14 -> 28, the 29th fires growth #3 *)
    @ range 15 28 insert
    @ [ insert 29; remove 20; lookup 20; insert 30 ]
    (* sweep every flow: hits, and misses for 10 and 20 *)
    @ range 0 30 lookup
  in
  Check.Op.v ~label:"epoch-reclaim" ~seed:17 (Array.of_list ops)

(* The off-heap storage scenario: churn that crosses an
   incremental-resize boundary and then leans on the frozen old
   region's dead-marking path — every remove between a growth trigger
   and the end of its drain must decrement the old region's live count
   exactly once (Packed_table's kill_slot raises if the accounting
   would go negative, and replaying this against offheap-table walks
   that assertion over Bigarray storage).  The double remove/re-insert
   pairs around each boundary are the sequences that would double-kill
   an old-region slot if a re-inserted key were dead-marked again.
   Flows are offset from churn_resize's and epoch_reclaim's so the
   three programs stay distinguishable in a diff. *)
let offheap_churn () =
  let flow i = Sim.Topology.flow_of_client (200 + i) in
  let insert i = op Check.Op.Insert (flow i) in
  let lookup i = op Check.Op.Lookup (flow i) in
  let remove i = op Check.Op.Remove (flow i) in
  let range a b f = List.init (b - a + 1) (fun k -> f (a + k)) in
  let ops =
    (* population 0 -> 7, then the 8th insert fires trigger #1 *)
    range 0 6 insert
    @ [ insert 7;
        (* old region (capacity 8) draining: dead-mark two residents,
           re-insert one (into the new region), remove it again — the
           second remove must hit the new region, not re-kill the
           dead-marked old slot *)
        remove 0; remove 5; insert 0; remove 0; lookup 0; lookup 5;
        insert 5 ]
    (* population 7 -> 14, the 15th fires trigger #2 *)
    @ range 8 14 insert
    @ [ (* old region (capacity 16) draining: interleave dead-marks
           with lookups that probe across dead-marked slots *)
        remove 3; lookup 3; remove 11; lookup 11; remove 6; lookup 12;
        insert 3; lookup 3; insert 11 ]
    (* sweep every flow: hits, and a miss for 6 *)
    @ range 0 14 lookup
  in
  Check.Op.v ~label:"offheap-churn" ~seed:23 (Array.of_list ops)

(* The cuckoo kick-chain + stash boundary, pinned.  Two flow classes,
   found by scanning the topology for hash coincidences (the program
   is deterministic):

   - {e pair} flows: BOTH candidate buckets pin to (0, 1) at 16
     buckets — and, by mask nesting, at every smaller power-of-two
     count, so the collisions survive growth from the 2-bucket
     minimum.  Twenty are inserted against the pair's sixteen slots;
     a twenty-first (the ghost) never is.
   - {e feeder} flows: primary bucket 0, but an alternate bucket that
     stays OFF the pair at every size the program reaches (h2 land 3
     >= 2).  Inserted first, they squat in bucket 0 — and they are
     the only occupants BFS can displace, because a pure both-bucket
     clique has nowhere to kick to.

   As the pair saturates, each new pair flow forces a BFS kick chain
   that evicts a feeder to its free alternate bucket (kicks and a
   filter increment for bucket 0); once only clique keys remain, BFS
   dead-ends and the surplus spills to the stash (more filter
   increments).  The ghost's lookups take the filter-positive full
   miss path — both buckets and the stash scanned, still a miss — the
   one path the filter cannot short-circuit.  Removes then hit a pair
   resident, a late pair flow (in the stash by then) and a kicked
   feeder (a displaced-entry remove: filter decrement at bucket 0),
   and re-insert all three. *)
let cuckoo_kick () =
  let mask = 15 in
  let hashes flow =
    let w0 = Demux.Flow_key.w0_of_flow flow
    and w1 = Demux.Flow_key.w1_of_flow flow in
    (Demux.Cuckoo_table.default_hash1 w0 w1,
     Demux.Cuckoo_table.default_hash2 w0 w1)
  in
  let is_pair flow =
    let h1, h2 = hashes flow in
    h1 land mask = 0 && h2 land mask = 1
  in
  let is_feeder flow =
    let h1, h2 = hashes flow in
    h1 land mask = 0 && h2 land 3 >= 2
  in
  let rec collect pairs feeders i =
    if List.length pairs = 21 && List.length feeders = 4 then
      (List.rev pairs, List.rev feeders)
    else if i > 2_000_000 then
      failwith "cuckoo_kick: collider scan exhausted"
    else
      let flow = Sim.Topology.flow_of_client i in
      if is_pair flow && List.length pairs < 21 then
        collect (flow :: pairs) feeders (i + 1)
      else if is_feeder flow && List.length feeders < 4 then
        collect pairs (flow :: feeders) (i + 1)
      else collect pairs feeders (i + 1)
  in
  let pairs, feeders = collect [] [] 0 in
  let residents = List.filteri (fun i _ -> i < 20) pairs in
  let ghost = List.nth pairs 20 in
  let insert f = op Check.Op.Insert f in
  let lookup f = op Check.Op.Lookup f in
  let remove f = op Check.Op.Remove f in
  let bucket_resident = List.nth residents 2 in
  let stash_resident = List.nth residents 19 in
  let kicked_feeder = List.nth feeders 0 in
  let ops =
    List.map insert feeders
    @ List.map insert residents
    @ List.map lookup (feeders @ residents)
    @ [ lookup ghost;
        remove bucket_resident; lookup bucket_resident;
        remove stash_resident; lookup stash_resident;
        remove kicked_feeder; lookup kicked_feeder;
        insert bucket_resident; insert stash_resident;
        insert kicked_feeder ]
    @ List.map lookup (feeders @ residents)
    @ [ lookup ghost ]
  in
  Check.Op.v ~label:"cuckoo-kick" ~seed:29 (Array.of_list ops)

(* The flow-migration oracle trace, pinned for Check.Smp_trace: twelve
   connection histories whose lowering drives Parallel.Smp's handoff
   machinery through every leg.  Each flow opens (I), streams data (L)
   with pure-ack noise (A), and every even flow closes through the
   protocol path (R -> server TIME-WAIT) and then retransmits its FIN
   (S) — the TIME-WAIT resurrection probe.  The first six flows are
   contiguous, so each handshake is chased immediately by its own data
   while the accept-hook redirect is still in flight (stragglers the
   listener core must forward); the last six are round-robin
   interleaved, so redirected segments race the Forward_done barrier on
   the adoptive cores (arrivals the new owner must buffer). *)
let smp_migrate () =
  let flow i = Sim.Topology.flow_of_client (300 + i) in
  let per k =
    let f = flow k in
    [ op Check.Op.Insert f ]
    @ List.init (2 + (k mod 3)) (fun _ -> op Check.Op.Lookup f)
    @ [ op Check.Op.Ack_lookup f; op Check.Op.Lookup f ]
    @ (if k mod 2 = 0 then
         [ op Check.Op.Remove f; op Check.Op.Send f ]
         @ (if k mod 4 = 0 then [ op Check.Op.Ack_lookup f ] else [])
       else [])
  in
  let head = List.concat (List.init 6 per) in
  let queues = Array.init 6 (fun k -> per (6 + k)) in
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    continue := false;
    Array.iteri
      (fun i q ->
        match q with
        | [] -> ()
        | x :: rest ->
          queues.(i) <- rest;
          acc := x :: !acc;
          continue := true)
      queues
  done;
  Check.Op.v ~label:"smp-migrate" ~seed:31
    (Array.of_list (head @ List.rev !acc))

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  let save name program =
    let path = Filename.concat dir (name ^ ".prog") in
    Check.Op.save path program;
    Printf.printf "wrote %s (%d ops)\n" path (Check.Op.length program)
  in
  save "robin-hood-backward-shift" (robin_hood ());
  save "guarded-eviction" (guarded_eviction ());
  save "churn_resize" (churn_resize ());
  save "epoch-reclaim" (epoch_reclaim ());
  save "offheap-churn" (offheap_churn ());
  save "cuckoo-kick" (cuckoo_kick ());
  save "smp-migrate" (smp_migrate ());
  save "boundary-tuples"
    (Check.Fuzz.generate ~label:"boundary-tuples" Check.Fuzz.Boundary ~seed:11
       ~pool:48 ~ops:300);
  save "collision-flood"
    (Check.Fuzz.generate ~label:"collision-flood" Check.Fuzz.Colliding
       ~seed:13 ~pool:48 ~ops:400)
