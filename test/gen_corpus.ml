(* Regenerates the pinned regression programs in test/corpus/.

   Run `dune exec test/gen_corpus.exe -- test/corpus` from the repo
   root after changing a generator, then commit the diff — the corpus
   is pinned precisely so that generator drift shows up in review, so
   never regenerate casually (see test/corpus/README.md). *)

let op kind flow = { Check.Op.kind; flow }

(* Five flows whose Flat_table home slots coincide at the minimum
   capacity (mask 7): inserting them builds a Robin-Hood displacement
   cluster, and removing from its middle forces the backward shift the
   planted Buggy_table skips. *)
let robin_hood () =
  let mask = 7 in
  let home flow =
    Demux.Flow_key.hash_words
      (Demux.Flow_key.w0_of_flow flow)
      (Demux.Flow_key.w1_of_flow flow)
    land mask
  in
  let rec collect acc slot i =
    if List.length acc = 5 then List.rev acc
    else
      let flow = Sim.Topology.flow_of_client i in
      match slot with
      | None -> collect [ flow ] (Some (home flow)) (i + 1)
      | Some s ->
        if home flow = s then collect (flow :: acc) slot (i + 1)
        else collect acc slot (i + 1)
  in
  let cluster = collect [] None 0 in
  let inserts = List.map (op Check.Op.Insert) cluster in
  let lookups = List.map (op Check.Op.Lookup) cluster in
  let removes = [ op Check.Op.Remove (List.nth cluster 0);
                  op Check.Op.Remove (List.nth cluster 2) ] in
  Check.Op.v ~label:"robin-hood-backward-shift" ~seed:0
    (Array.of_list
       (inserts @ lookups @ [ List.nth removes 0 ] @ lookups
       @ [ List.nth removes 1 ] @ lookups))

(* Forty flows all reducing to chain 0 of the default Sequent
   geometry: past max_chain = 32 the overload guard starts shedding,
   so replaying this against guarded-* exercises eviction-set
   prediction, and against everything else it is plain churn. *)
let guarded_eviction () =
  let flows =
    Array.to_list (Check.Fuzz.flow_pool Check.Fuzz.Colliding ~seed:3 ~size:40)
  in
  let first_ten = List.filteri (fun i _ -> i < 10) flows in
  let inserts = List.map (op Check.Op.Insert) flows in
  let lookups = List.map (op Check.Op.Lookup) flows in
  Check.Op.v ~label:"guarded-eviction" ~seed:3
    (Array.of_list
       (inserts @ lookups
       @ List.map (op Check.Op.Remove) first_ten
       @ lookups
       @ List.map (op Check.Op.Insert) first_ten
       @ lookups))

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  let save name program =
    let path = Filename.concat dir (name ^ ".prog") in
    Check.Op.save path program;
    Printf.printf "wrote %s (%d ops)\n" path (Check.Op.length program)
  in
  save "robin-hood-backward-shift" (robin_hood ());
  save "guarded-eviction" (guarded_eviction ());
  save "boundary-tuples"
    (Check.Fuzz.generate ~label:"boundary-tuples" Check.Fuzz.Boundary ~seed:11
       ~pool:48 ~ops:300);
  save "collision-flood"
    (Check.Fuzz.generate ~label:"collision-flood" Check.Fuzz.Colliding
       ~seed:13 ~pool:48 ~ops:400)
