(* Tests for lib/check: the differential oracle, the deterministic
   fuzzer and its shrinker, the pinned regression corpus, and the
   analytic cross-validation grid.  The centrepiece is the planted-bug
   demonstration: a copy of Flat_table whose delete skips the
   Robin-Hood backward shift is caught by the fuzzer and shrunk to a
   replayable counterexample a handful of ops long. *)

let flow i = Sim.Topology.flow_of_client i

(* Every registry algorithm, plus the striped table and the flat
   Robin-Hood index — the subject pool the oracle drives. *)
let registry_specs =
  [ Demux.Registry.Linear; Demux.Registry.Bsd; Demux.Registry.Mtf;
    Demux.Registry.Sr_cache;
    Demux.Registry.Sequent
      { chains = 19; hasher = Hashing.Hashers.multiplicative };
    Demux.Registry.Hashed_mtf
      { chains = 19; hasher = Hashing.Hashers.multiplicative };
    Demux.Registry.Conn_id { capacity = 4096 };
    Demux.Registry.Resizing_hash; Demux.Registry.Splay;
    Demux.Registry.Lru_cache { entries = 8 };
    Demux.Registry.Guarded
      { spec =
          Demux.Registry.Sequent
            { chains = 19; hasher = Hashing.Hashers.multiplicative };
        max_chain = Demux.Guarded.default_max_chain;
        max_total = Demux.Guarded.default_max_total };
    Demux.Registry.Guarded
      { spec = Demux.Registry.Bsd; max_chain = 16; max_total = 48 };
    Demux.Registry.Cuckoo;
    Demux.Registry.Guarded
      { spec = Demux.Registry.Cuckoo;
        max_chain = Demux.Guarded.default_max_chain;
        max_total = Demux.Guarded.default_max_total } ]

let all_subjects () =
  List.map (fun spec () -> Check.Subject.of_spec spec) registry_specs
  @ [ (fun () -> Check.Subject.striped ());
      (fun () -> Check.Subject.flat_table ());
      (fun () -> Check.Subject.flat_table_doubling ());
      (fun () -> Check.Subject.epoch_table ());
      (fun () -> Check.Subject.offheap_table ());
      (fun () -> Check.Subject.guarded_flat_table ());
      (fun () -> Check.Subject.cuckoo_table ()) ]

let buggy_subject () =
  Check.Subject.of_flat ~name:"buggy-flat" (module Check.Buggy_table)

let op kind flow = { Check.Op.kind; flow }

let op_equal (a : Check.Op.op) (b : Check.Op.op) =
  a.Check.Op.kind = b.Check.Op.kind
  && Packet.Flow.equal a.Check.Op.flow b.Check.Op.flow

let program_equal (a : Check.Op.t) (b : Check.Op.t) =
  a.Check.Op.label = b.Check.Op.label
  && a.Check.Op.seed = b.Check.Op.seed
  && Array.length a.Check.Op.ops = Array.length b.Check.Op.ops
  && Array.for_all2 op_equal a.Check.Op.ops b.Check.Op.ops

(* ------------------------------------------------------------------ *)
(* Op: the program text format                                         *)

let test_op_round_trip_unit () =
  let program =
    Check.Fuzz.generate Check.Fuzz.Boundary ~seed:5 ~pool:48 ~ops:200
  in
  match Check.Op.parse (Check.Op.print program) with
  | Error message -> Alcotest.fail message
  | Ok parsed ->
    Alcotest.(check bool) "round-trips" true (program_equal program parsed)

let test_op_parse_errors () =
  let bad text =
    match Check.Op.parse text with
    | Ok _ -> Alcotest.fail ("parsed: " ^ text)
    | Error _ -> ()
  in
  bad "X 1.2.3.4:1 5.6.7.8:2";
  bad "I 1.2.3.4:99999 5.6.7.8:2";
  bad "I 1.2.3.4 5.6.7.8:2";
  bad "I 300.2.3.4:1 5.6.7.8:2"

let qcheck_op_round_trip =
  let arbitrary_program =
    let open QCheck in
    let endpoint =
      map
        (fun (a, b, c, d, port) ->
          Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets a b c d) port)
        (quad (0 -- 255) (0 -- 255) (0 -- 255) (0 -- 255)
        |> fun q -> pair q (0 -- 65535) |> map (fun ((a, b, c, d), p) -> (a, b, c, d, p)))
    in
    let kind =
      oneofl
        [ Check.Op.Insert; Check.Op.Lookup; Check.Op.Ack_lookup;
          Check.Op.Remove; Check.Op.Send ]
    in
    let op_gen =
      map
        (fun (k, (local, remote)) ->
          { Check.Op.kind = k; flow = Packet.Flow.v ~local ~remote })
        (pair kind (pair endpoint endpoint))
    in
    map
      (fun (seed, ops) ->
        Check.Op.v ~label:"qcheck" ~seed (Array.of_list ops))
      (pair (0 -- 1_000_000) (list_of_size Gen.(0 -- 40) op_gen))
  in
  QCheck.Test.make ~count:200 ~name:"Op.parse inverts Op.print"
    arbitrary_program (fun program ->
      match Check.Op.parse (Check.Op.print program) with
      | Ok parsed -> program_equal program parsed
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* The differential oracle                                             *)

let test_diff_all_algorithms_clean () =
  (* Every profile, every subject, one program each: zero mismatches.
     This is the tentpole invariant — all twenty-one implementations
     agree with the reference model op for op. *)
  let summary, failures =
    Check.Fuzz.campaign ~programs_per_profile:1 ~ops:768 ~pool:48
      ~subjects:(all_subjects ()) ~seed:42 ()
  in
  Alcotest.(check int) "subjects" 21 (List.length summary.Check.Diff.subjects);
  Alcotest.(check int) "programs" 5 summary.Check.Diff.programs;
  Alcotest.(check bool) "ops executed" true (summary.Check.Diff.ops > 10_000);
  (match summary.Check.Diff.mismatches with
  | [] -> ()
  | m :: _ -> Alcotest.fail (Format.asprintf "%a" Check.Diff.pp_mismatch m));
  Alcotest.(check int) "no failures" 0 (List.length failures)

let test_diff_is_deterministic () =
  let run () =
    let summary, _ =
      Check.Fuzz.campaign ~programs_per_profile:1 ~ops:256 ~pool:32
        ~subjects:[ (fun () -> Check.Subject.of_spec Demux.Registry.Bsd) ]
        ~seed:7 ()
    in
    summary.Check.Diff.ops
  in
  Alcotest.(check int) "same op count" (run ()) (run ())

let test_diff_obs_counters () =
  let obs = Obs.Registry.create () in
  let _summary, _failures =
    Check.Fuzz.campaign ~obs ~programs_per_profile:1 ~ops:128 ~pool:16
      ~subjects:[ (fun () -> Check.Subject.of_spec Demux.Registry.Mtf) ]
      ~seed:9 ()
  in
  let metrics = Obs.Registry.snapshot obs in
  let counter name =
    match Obs.Registry.find metrics name with
    | Some { Obs.Registry.data = Obs.Registry.Counter n; _ } -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "check.programs" 5 (counter "check.programs");
  Alcotest.(check int) "check.ops" (5 * 128) (counter "check.ops");
  Alcotest.(check int) "check.mismatches" 0 (counter "check.mismatches")

(* ------------------------------------------------------------------ *)
(* Pinned corpus                                                       *)

let corpus_programs () =
  let dir = "corpus" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".prog")
  |> List.sort String.compare
  |> List.map (fun f ->
         let path = Filename.concat dir f in
         match Check.Op.load path with
         | Ok program -> (f, program)
         | Error message -> Alcotest.fail (path ^ ": " ^ message))

let test_corpus_replays_clean () =
  let programs = corpus_programs () in
  Alcotest.(check bool) "corpus present" true (List.length programs >= 4);
  List.iter
    (fun (name, program) ->
      let summary =
        Check.Diff.run (all_subjects ()) [ program ]
      in
      match summary.Check.Diff.mismatches with
      | [] -> ()
      | m :: _ ->
        Alcotest.fail
          (Format.asprintf "%s: %a" name Check.Diff.pp_mismatch m))
    programs

let load_corpus name =
  match Check.Op.load (Filename.concat "corpus" name) with
  | Ok program -> program
  | Error message -> Alcotest.fail (name ^ ": " ^ message)

let test_corpus_robin_hood_is_a_cluster () =
  (* The pinned program's five inserted flows share one Flat_table
     home slot at the minimum capacity, so inserting them builds a
     displacement cluster — the precondition for backward-shift
     deletion to matter at all. *)
  let program = load_corpus "robin-hood-backward-shift.prog" in
  let inserts =
    Array.to_list program.Check.Op.ops
    |> List.filter (fun (o : Check.Op.op) -> o.Check.Op.kind = Check.Op.Insert)
    |> List.map (fun (o : Check.Op.op) -> o.Check.Op.flow)
  in
  Alcotest.(check int) "five colliding flows" 5 (List.length inserts);
  let home f =
    Demux.Flow_key.hash_words
      (Demux.Flow_key.w0_of_flow f)
      (Demux.Flow_key.w1_of_flow f)
    land 7
  in
  match inserts with
  | first :: rest ->
    List.iter
      (fun f -> Alcotest.(check int) "same home slot" (home first) (home f))
      rest
  | [] -> assert false

let test_corpus_robin_hood_catches_buggy_table () =
  (* The same program must fail the backward-shift-skipping copy —
     proof the corpus entry really regression-tests the delete path. *)
  let program = load_corpus "robin-hood-backward-shift.prog" in
  Alcotest.(check bool) "flat table passes" true
    (Check.Diff.run_subject (Check.Subject.flat_table ()) program = []);
  Alcotest.(check bool) "buggy table fails" true
    (Check.Diff.run_subject (buggy_subject ()) program <> [])

let test_corpus_guarded_sheds () =
  (* The guarded-eviction program must actually push the guard past
     its chain bound: evictions happen, and the oracle (via its shadow
     guard) still predicts the exact surviving set. *)
  let program = load_corpus "guarded-eviction.prog" in
  let subject =
    Check.Subject.of_spec
      (Demux.Registry.Guarded
         { spec =
             Demux.Registry.Sequent
               { chains = 19; hasher = Hashing.Hashers.multiplicative };
           max_chain = Demux.Guarded.default_max_chain;
           max_total = Demux.Guarded.default_max_total })
  in
  (match Check.Diff.run_subject subject program with
  | [] -> ()
  | m :: _ -> Alcotest.fail (Format.asprintf "%a" Check.Diff.pp_mismatch m));
  let stats = subject.Check.Subject.stats () in
  Alcotest.(check bool) "guard evicted" true
    (stats.Demux.Lookup_stats.evictions > 0)

let test_corpus_cuckoo_kick_crosses_stash () =
  (* Every flow in the pinned program homes to cuckoo bucket 0 at 16
     buckets (and, by mask nesting, at every smaller power-of-two
     count); the pair class also pins its alternate bucket to 1,
     while the feeder class keeps its alternate off the pair.
     Replaying the program onto a bare cuckoo table must therefore
     overflow the (0, 1) pair's sixteen slots: BFS kick chains evict
     the feeders, the surplus pair flows land in the stash, and the
     structural probe bound holds throughout. *)
  let program = load_corpus "cuckoo-kick.prog" in
  let module C = Demux.Cuckoo_table.Heap in
  let table = C.create () in
  Array.iter
    (fun (o : Check.Op.op) ->
      let w0 = Demux.Flow_key.w0_of_flow o.Check.Op.flow
      and w1 = Demux.Flow_key.w1_of_flow o.Check.Op.flow in
      let h2 = Demux.Cuckoo_table.default_hash2 w0 w1 in
      Alcotest.(check int) "primary bucket pinned" 0
        (Demux.Cuckoo_table.default_hash1 w0 w1 land 15);
      Alcotest.(check bool) "pair or feeder alternate" true
        (h2 land 15 = 1 || h2 land 3 >= 2);
      match o.Check.Op.kind with
      | Check.Op.Insert -> C.replace table ~w0 ~w1 0
      | Check.Op.Remove -> C.remove table ~w0 ~w1
      | _ -> ignore (C.find_opt table ~w0 ~w1))
    program.Check.Op.ops;
  Alcotest.(check int) "twenty-four residents" 24 (C.length table);
  Alcotest.(check bool) "kick chains ran" true (C.kicks table > 0);
  Alcotest.(check bool) "stash in use" true (C.stash_len table > 0);
  Alcotest.(check bool) "probe bound holds" true
    (C.max_probe_length table <= 2 + C.stash_len table)

(* ------------------------------------------------------------------ *)
(* The planted bug: caught, shrunk, replayable                         *)

let buggy_fails program =
  Check.Diff.run_subject (buggy_subject ()) program <> []

let find_failing_program () =
  let rec hunt seed =
    if seed > 50 then Alcotest.fail "no program caught the planted bug"
    else
      let program =
        Check.Fuzz.generate Check.Fuzz.Colliding ~seed ~pool:32 ~ops:256
      in
      if buggy_fails program then program else hunt (seed + 1)
  in
  hunt 0

let test_fuzzer_catches_planted_bug () =
  let original = find_failing_program () in
  let shrunk = Check.Fuzz.shrink buggy_fails original in
  (* Still failing, no longer than the input. *)
  Alcotest.(check bool) "shrunk still fails" true (buggy_fails shrunk);
  Alcotest.(check bool) "shrunk no longer" true
    (Check.Op.length shrunk <= Check.Op.length original);
  (* 1-minimal: deleting any single remaining op loses the failure. *)
  let ops = shrunk.Check.Op.ops in
  Array.iteri
    (fun i _ ->
      let without =
        Array.append (Array.sub ops 0 i)
          (Array.sub ops (i + 1) (Array.length ops - i - 1))
      in
      Alcotest.(check bool)
        (Printf.sprintf "op %d is necessary" i)
        false
        (buggy_fails (Check.Op.v ~label:"minimal?" ~seed:shrunk.Check.Op.seed without)))
    ops;
  (* Replayable: the printed dump parses back to the identical program
     and still fails — the counterexample survives being pasted into a
     corpus file. *)
  (match Check.Op.parse (Check.Op.print shrunk) with
  | Error message -> Alcotest.fail message
  | Ok parsed ->
    Alcotest.(check bool) "byte-identical replay" true
      (program_equal shrunk parsed);
    Alcotest.(check bool) "replay still fails" true (buggy_fails parsed));
  (* And the correct table shrugs the same program off. *)
  Alcotest.(check bool) "real flat table passes" true
    (Check.Diff.run_subject (Check.Subject.flat_table ()) shrunk = [])

let qcheck_shrink_properties =
  (* Across many generator seeds: whenever a colliding program trips
     the planted bug, shrinking yields a still-failing program no
     longer than the original that replays identically from its
     printed form. *)
  QCheck.Test.make ~count:12 ~name:"shrink: fails, <= length, replays"
    QCheck.(0 -- 1_000) (fun seed ->
      let program =
        Check.Fuzz.generate Check.Fuzz.Colliding ~seed ~pool:24 ~ops:192
      in
      if not (buggy_fails program) then true
      else
        let shrunk = Check.Fuzz.shrink buggy_fails program in
        buggy_fails shrunk
        && Check.Op.length shrunk <= Check.Op.length program
        &&
        match Check.Op.parse (Check.Op.print shrunk) with
        | Ok parsed -> program_equal shrunk parsed && buggy_fails parsed
        | Error _ -> false)

let test_campaign_reports_planted_bug () =
  (* End to end: a campaign over the buggy subject produces a failure
     with a shrunk program and a mismatch naming the subject. *)
  let summary, failures =
    Check.Fuzz.campaign ~profiles:[ Check.Fuzz.Colliding ]
      ~programs_per_profile:2 ~ops:256 ~pool:32
      ~subjects:[ buggy_subject ] ~seed:1 ()
  in
  Alcotest.(check bool) "mismatches recorded" true
    (summary.Check.Diff.mismatches <> []);
  match failures with
  | [] -> Alcotest.fail "campaign found no failure"
  | f :: _ ->
    Alcotest.(check string) "names the subject" "buggy-flat"
      f.Check.Fuzz.mismatch.Check.Diff.subject;
    Alcotest.(check bool) "shrunk is smaller" true
      (Check.Op.length f.Check.Fuzz.shrunk
      <= Check.Op.length f.Check.Fuzz.original)

(* ------------------------------------------------------------------ *)
(* Guarded shedding semantics                                          *)

let test_guarded_eviction_sets_match () =
  (* A tight guard under collision flood: the shadow guard over the
     oracle must predict the exact same eviction set, or the quiesce
     content audit fails.  Run long enough that dozens of evictions
     happen. *)
  let spec =
    Demux.Registry.Guarded
      { spec =
          Demux.Registry.Sequent
            { chains = 19; hasher = Hashing.Hashers.multiplicative };
        max_chain = 8; max_total = 24 }
  in
  let program =
    Check.Fuzz.generate Check.Fuzz.Colliding ~seed:21 ~pool:48 ~ops:2048
  in
  let subject = Check.Subject.of_spec spec in
  (match Check.Diff.run_subject subject program with
  | [] -> ()
  | m :: _ -> Alcotest.fail (Format.asprintf "%a" Check.Diff.pp_mismatch m));
  let stats = subject.Check.Subject.stats () in
  Alcotest.(check bool) "many evictions or rejections" true
    (stats.Demux.Lookup_stats.evictions
     + stats.Demux.Lookup_stats.rejections
    > 20)

let test_guarded_eviction_during_resize () =
  (* Eviction accounting while an incremental migration is in flight.
     [max_total = 30] sits just past the flat table's third resize
     boundary (the insert reaching population 29 triggers the 32->64
     grow), so on a plain ramp the guard starts shedding while the
     capacity-32 old region is still draining — evicted victims can be
     old-region residents, exercising the dead-marking remove path.
     Half one drives the guard + table directly (the exact
     [Subject.guarded_flat_table] wiring) and asserts the overlap
     really happens; half two replays equivalent churn through the
     oracle's shadow guard, which must predict the exact eviction
     set mid-migration. *)
  let config = Demux.Guarded.config ~max_chain:30 ~max_total:30 ~chains:4 () in
  let guard = Demux.Guarded.create config in
  let table : int Demux.Flat_table.t = Demux.Flat_table.create () in
  let words f =
    (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)
  in
  let evictions = ref 0 and overlapped = ref 0 in
  for i = 0 to 44 do
    let f = flow i in
    match Demux.Guarded.admit guard f with
    | `Reject -> Alcotest.fail "guard rejected below max_chain"
    | `Admit victims ->
      List.iter
        (fun victim ->
          let w0, w1 = words victim in
          Alcotest.(check bool) "victim resident" true
            (Demux.Flat_table.mem table ~w0 ~w1);
          Demux.Flat_table.remove table ~w0 ~w1;
          Demux.Guarded.note_removed guard victim;
          incr evictions;
          if Demux.Flat_table.pending_migration table > 0 then
            incr overlapped)
        victims;
      let w0, w1 = words f in
      Demux.Flat_table.replace table ~w0 ~w1 i;
      Demux.Guarded.note_inserted guard f
  done;
  Alcotest.(check int) "population pinned at max_total" 30
    (Demux.Flat_table.length table);
  Alcotest.(check int) "one victim per over-limit insert" 15 !evictions;
  Alcotest.(check bool) "crossed several resize boundaries" true
    (Demux.Flat_table.resizes table >= 3);
  Alcotest.(check bool) "evictions landed mid-migration" true
    (!overlapped >= 1);
  (* Shadow-guard half: the oracle must predict the same eviction
     sets while the subject's migrations are in flight.  Ramp past
     the boundary, then churn removes/re-inserts across it. *)
  let ops =
    Array.of_list
      (List.init 45 (fun i -> op Check.Op.Insert (flow i))
      @ List.init 45 (fun i -> op Check.Op.Lookup (flow i))
      @ List.init 6 (fun i -> op Check.Op.Remove (flow (20 + i)))
      @ List.init 6 (fun i -> op Check.Op.Insert (flow (50 + i)))
      @ List.init 56 (fun i -> op Check.Op.Lookup (flow i)))
  in
  let program = Check.Op.v ~label:"eviction-during-resize" ~seed:9 ops in
  let subject =
    Check.Subject.guarded_flat_table ~max_chain:30 ~max_total:30 ()
  in
  (match Check.Diff.run_subject subject program with
  | [] -> ()
  | m :: _ -> Alcotest.fail (Format.asprintf "%a" Check.Diff.pp_mismatch m));
  let stats = subject.Check.Subject.stats () in
  Alcotest.(check bool) "shadow guard saw evictions" true
    (stats.Demux.Lookup_stats.evictions > 10)

(* ------------------------------------------------------------------ *)
(* Parallel lockstep                                                   *)

(* A churn program that is valid per flow (insert only when absent,
   remove only when present), so any stripe-preserving reordering
   leaves every per-flow op sequence intact. *)
let churn_ops ~pool ~ops ~seed =
  let rng = Numerics.Rng.create ~seed in
  let present = Array.make pool false in
  Array.init ops (fun _ ->
      let i = Numerics.Rng.int rng ~bound:pool in
      let f = flow i in
      let roll = Numerics.Rng.int rng ~bound:100 in
      if roll < 30 && not present.(i) then begin
        present.(i) <- true;
        op Check.Op.Insert f
      end
      else if roll < 45 && present.(i) then begin
        present.(i) <- false;
        op Check.Op.Remove f
      end
      else op Check.Op.Lookup f)

type lockstep_result =
  | Inserted
  | Removed of int option
  | Found of int option

let apply_striped table (o : Check.Op.op) index =
  match o.Check.Op.kind with
  | Check.Op.Insert ->
    ignore (Parallel.Striped.insert table o.Check.Op.flow index);
    Inserted
  | Check.Op.Remove ->
    Removed
      (Option.map
         (fun pcb -> pcb.Demux.Pcb.data)
         (Parallel.Striped.remove table o.Check.Op.flow))
  | Check.Op.Lookup | Check.Op.Ack_lookup | Check.Op.Send ->
    Found
      (Option.map
         (fun pcb -> pcb.Demux.Pcb.data)
         (Parallel.Striped.lookup table o.Check.Op.flow))

let test_striped_four_domain_lockstep () =
  let chains = 19 and domains = 4 in
  let ops = churn_ops ~pool:200 ~ops:8_000 ~seed:33 in
  let n = Array.length ops in
  (* Single-domain reference run. *)
  let reference = Parallel.Striped.create ~chains () in
  let expected = Array.mapi (fun i o -> apply_striped reference o i) ops in
  (* 4-domain run: domain d owns stripes congruent to d mod domains,
     and applies its ops in program order — per-stripe sequences are
     exactly the single-domain ones, so every result and the merged
     stats must come out identical. *)
  let table = Parallel.Striped.create ~chains () in
  let results = Array.make n Inserted in
  let stripe_of (o : Check.Op.op) =
    Hashing.Hashers.bucket_flow Hashing.Hashers.multiplicative ~buckets:chains
      o.Check.Op.flow
  in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Array.iteri
              (fun i o ->
                if stripe_of o mod domains = d then
                  results.(i) <- apply_striped table o i)
              ops))
  in
  List.iter Domain.join workers;
  for i = 0 to n - 1 do
    if results.(i) <> expected.(i) then
      Alcotest.fail (Printf.sprintf "op %d diverged from single-domain run" i)
  done;
  let merged = Parallel.Striped.stats table
  and single = Parallel.Striped.stats reference in
  Alcotest.(check bool) "merged stats match single-domain run" true
    (merged = single);
  (* And the scalar Sequent algorithm, driven by the same program,
     agrees on every counter too (same chains, same per-chain cache). *)
  let scalar =
    Demux.Sequent.create ~chains ~hasher:Hashing.Hashers.multiplicative ()
  in
  Array.iteri
    (fun i (o : Check.Op.op) ->
      match o.Check.Op.kind with
      | Check.Op.Insert -> ignore (Demux.Sequent.insert scalar o.Check.Op.flow i)
      | Check.Op.Remove -> ignore (Demux.Sequent.remove scalar o.Check.Op.flow)
      | _ -> ignore (Demux.Sequent.lookup scalar o.Check.Op.flow))
    ops;
  let scalar_stats = Demux.Lookup_stats.snapshot (Demux.Sequent.stats scalar) in
  Alcotest.(check bool) "scalar Sequent stats match" true
    (scalar_stats = merged)

let test_batch_accounting_equals_scalar () =
  (* A burst demultiplexed through lookup_batch must charge exactly
     what the per-packet path charges — same examined counts, same
     cache hits — plus only the batch markers. *)
  let population = Array.init 300 flow in
  let make () =
    let t = Parallel.Striped.create ~chains:19 () in
    Array.iteri (fun i f -> ignore (Parallel.Striped.insert t f i)) population;
    t
  in
  let rng = Numerics.Rng.create ~seed:11 in
  let burst =
    Array.init 4_096 (fun _ ->
        (* 1 in 8 is a miss: a flow outside the resident population. *)
        let i = Numerics.Rng.int rng ~bound:(300 * 8 / 7) in
        flow i)
  in
  let scalar = make () in
  let scalar_found = ref 0 in
  Array.iter
    (fun f ->
      match Parallel.Striped.lookup scalar f with
      | Some _ -> incr scalar_found
      | None -> ())
    burst;
  let batched = make () in
  let batched_found = Parallel.Striped.lookup_batch batched burst in
  Alcotest.(check int) "same hits" !scalar_found batched_found;
  let s = Parallel.Striped.stats scalar
  and b = Parallel.Striped.stats batched in
  Alcotest.(check int) "lookups" s.Demux.Lookup_stats.lookups
    b.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "pcbs_examined" s.Demux.Lookup_stats.pcbs_examined
    b.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "cache_hits" s.Demux.Lookup_stats.cache_hits
    b.Demux.Lookup_stats.cache_hits;
  Alcotest.(check int) "found" s.Demux.Lookup_stats.found
    b.Demux.Lookup_stats.found;
  Alcotest.(check int) "not_found" s.Demux.Lookup_stats.not_found
    b.Demux.Lookup_stats.not_found;
  Alcotest.(check int) "max_examined" s.Demux.Lookup_stats.max_examined
    b.Demux.Lookup_stats.max_examined;
  Alcotest.(check int) "scalar path has no batches" 0
    s.Demux.Lookup_stats.batches;
  Alcotest.(check bool) "batched path marked batches" true
    (b.Demux.Lookup_stats.batches > 0)

(* ------------------------------------------------------------------ *)
(* Epoch table: lockstep determinism and the grace-period audit        *)

let apply_epoch table (o : Check.Op.op) index =
  let w0 = Demux.Flow_key.w0_of_flow o.Check.Op.flow
  and w1 = Demux.Flow_key.w1_of_flow o.Check.Op.flow in
  match o.Check.Op.kind with
  | Check.Op.Insert ->
    Epoch.Table.replace table ~w0 ~w1 index;
    Inserted
  | Check.Op.Remove ->
    let prior = Epoch.Table.find_opt table ~w0 ~w1 in
    Epoch.Table.remove table ~w0 ~w1;
    Removed prior
  | Check.Op.Lookup | Check.Op.Ack_lookup | Check.Op.Send ->
    Found (Epoch.Table.find_opt table ~w0 ~w1)

let test_epoch_four_domain_lockstep () =
  let domains = 4 in
  let ops = churn_ops ~pool:200 ~ops:8_000 ~seed:35 in
  let n = Array.length ops in
  (* Single-domain reference run of the same driver. *)
  let reference = Epoch.Table.create () in
  let expected = Array.mapi (fun i o -> apply_epoch reference o i) ops in
  (* 4-domain run: domain d owns the flows hashing to bucket d and
     applies its ops in program order, so every per-flow op sequence
     is exactly the single-domain one.  Writers serialize on the
     table's writer mutex and readers are lock-free, but a flow's
     presence depends only on its own op sequence — so every result
     and the merged stats must come out identical (the table charges
     exactly one examination per lookup, an order-independent
     discipline). *)
  let table = Epoch.Table.create () in
  let results = Array.make n Inserted in
  let owner_of (o : Check.Op.op) =
    Hashing.Hashers.bucket_flow Hashing.Hashers.multiplicative
      ~buckets:domains o.Check.Op.flow
  in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            Array.iteri
              (fun i o ->
                if owner_of o = d then results.(i) <- apply_epoch table o i)
              ops))
  in
  List.iter Domain.join workers;
  for i = 0 to n - 1 do
    if results.(i) <> expected.(i) then
      Alcotest.fail (Printf.sprintf "op %d diverged from single-domain run" i)
  done;
  let merged = Epoch.Table.stats table
  and single = Epoch.Table.stats reference in
  Alcotest.(check bool) "merged stats match single-domain run" true
    (merged = single);
  (* Every region the concurrent run retired is reclaimable once the
     workers are gone. *)
  Epoch.Table.quiesce table;
  Alcotest.(check int) "retire backlog drained" 0 (Epoch.Table.pending table);
  (* The scalar Sequent algorithm, driven by the same program, returns
     the same payload for every op — same per-flow histories — and
     agrees on the result-derived counters (examined counts differ by
     design: Sequent charges chain positions, the epoch table charges
     one probe). *)
  let scalar =
    Demux.Sequent.create ~chains:19 ~hasher:Hashing.Hashers.multiplicative ()
  in
  Array.iteri
    (fun i (o : Check.Op.op) ->
      let r =
        match o.Check.Op.kind with
        | Check.Op.Insert ->
          ignore (Demux.Sequent.insert scalar o.Check.Op.flow i);
          Inserted
        | Check.Op.Remove ->
          Removed
            (Option.map
               (fun pcb -> pcb.Demux.Pcb.data)
               (Demux.Sequent.remove scalar o.Check.Op.flow))
        | Check.Op.Lookup | Check.Op.Ack_lookup | Check.Op.Send ->
          Found
            (Option.map
               (fun pcb -> pcb.Demux.Pcb.data)
               (Demux.Sequent.lookup scalar o.Check.Op.flow))
      in
      if r <> expected.(i) then
        Alcotest.fail
          (Printf.sprintf "op %d: scalar Sequent result diverged" i))
    ops;
  let scalar_stats = Demux.Lookup_stats.snapshot (Demux.Sequent.stats scalar) in
  Alcotest.(check int) "inserts match scalar Sequent"
    scalar_stats.Demux.Lookup_stats.inserts merged.Demux.Lookup_stats.inserts;
  Alcotest.(check int) "removes match scalar Sequent"
    scalar_stats.Demux.Lookup_stats.removes merged.Demux.Lookup_stats.removes

let test_epoch_audit_real_table_passes () =
  let r =
    Check.Epoch_audit.run
      (module struct
        include Epoch.Table

        let create () = create ()
      end)
  in
  Alcotest.(check int) "pinned view answers every probe" 0
    r.Check.Epoch_audit.wrong;
  Alcotest.(check bool) "retire backlog visible while pinned" true
    (r.Check.Epoch_audit.pending_while_pinned > 0);
  Alcotest.(check int) "backlog drains at quiesce" 0
    r.Check.Epoch_audit.pending_after_quiesce;
  Alcotest.(check bool) "audit passes" true (Check.Epoch_audit.passed r)

let test_epoch_audit_catches_buggy_epoch () =
  let r =
    Check.Epoch_audit.run
      (module struct
        include Check.Buggy_epoch

        let create () = create ()
      end)
  in
  (* The planted bug scrubs the pinned region at publish time, so the
     pinned view misses every flow that was resident — a total, not a
     partial, failure — and nothing is ever deferred. *)
  Alcotest.(check int) "pinned view lost every resident"
    r.Check.Epoch_audit.probed r.Check.Epoch_audit.wrong;
  Alcotest.(check bool) "probes happened" true
    (r.Check.Epoch_audit.probed > 0);
  Alcotest.(check int) "nothing deferred while pinned" 0
    r.Check.Epoch_audit.pending_while_pinned;
  Alcotest.(check bool) "audit fails" false (Check.Epoch_audit.passed r)

let test_corpus_epoch_reclaim () =
  (* The pinned program's first seven ops build a capacity-8 region;
     the rest churns across all three growth boundaries (populations
     8, 15, 29) with removes and re-inserts in flight.  Replaying it
     against every subject is covered by the replays-clean test; this
     one replays it onto a bare epoch table with a view pinned after
     the seventh insert — the reader that outlives every region the
     writer retires — and checks the view still answers with the
     pin-time payloads even for flows the churn removed or rebound. *)
  let program = load_corpus "epoch-reclaim.prog" in
  let ops = program.Check.Op.ops in
  let table = Epoch.Table.create () in
  let split = 7 in
  for i = 0 to split - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "op %d is an insert" i)
      true
      (ops.(i).Check.Op.kind = Check.Op.Insert);
    ignore (apply_epoch table ops.(i) i)
  done;
  let resident = ref [] in
  Epoch.Table.iter
    (fun ~w0 ~w1 v -> resident := (w0, w1, v) :: !resident)
    table;
  Alcotest.(check int) "seven residents at pin time" split
    (List.length !resident);
  let view = Epoch.Table.pin table in
  for i = split to Array.length ops - 1 do
    ignore (apply_epoch table ops.(i) i)
  done;
  Alcotest.(check bool) "crossed all three growth boundaries" true
    (Epoch.Table.capacity table >= 64);
  Alcotest.(check bool) "writer retired regions across the pin" true
    (Epoch.Table.pending table > 0);
  List.iter
    (fun (w0, w1, v) ->
      match Epoch.Table.view_find view ~w0 ~w1 with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.fail "pinned view lost a pin-time resident")
    !resident;
  Epoch.Table.unpin table;
  Epoch.Table.quiesce table;
  Alcotest.(check int) "backlog drains after unpin" 0
    (Epoch.Table.pending table)

(* ------------------------------------------------------------------ *)
(* Cross-validation and the report                                     *)

let test_xval_grid_passes () =
  let outcome = Check.Xval.run ~duration:40.0 ~seed:42 () in
  Alcotest.(check int) "full grid" 18 (List.length outcome.Check.Xval.cells);
  List.iter
    (fun (c : Check.Xval.cell) ->
      if not c.Check.Xval.pass then
        Alcotest.fail
          (Printf.sprintf "%s at N=%d out of tolerance (ratio %.3f)"
             c.Check.Xval.algorithm c.Check.Xval.users c.Check.Xval.ratio))
    outcome.Check.Xval.cells;
  Alcotest.(check bool) "passed" true outcome.Check.Xval.passed;
  (* The grid covers >= 3 populations and >= 3 chain counts. *)
  let distinct f =
    List.sort_uniq compare (List.filter_map f outcome.Check.Xval.cells)
  in
  Alcotest.(check bool) "3 populations" true
    (List.length (distinct (fun c -> Some c.Check.Xval.users)) >= 3);
  Alcotest.(check bool) "3 chain counts" true
    (List.length (distinct (fun c -> c.Check.Xval.chains)) >= 3)

let test_report_round_trip () =
  let summary, failures =
    Check.Fuzz.campaign ~profiles:[ Check.Fuzz.Uniform ]
      ~programs_per_profile:1 ~ops:64 ~pool:16
      ~subjects:[ (fun () -> Check.Subject.of_spec Demux.Registry.Bsd) ]
      ~seed:4 ()
  in
  let report = Check.Report.v ~seed:4 summary failures in
  Alcotest.(check bool) "passed" true (Check.Report.passed report);
  let path = Filename.temp_file "tcpdemux-check" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Check.Report.write path report;
      match Check.Report.validate_file path with
      | Ok () -> ()
      | Error message -> Alcotest.fail message)

let test_report_rejects_failures () =
  (* A report carrying a mismatch must not validate. *)
  let mismatch =
    { Check.Diff.subject = "bsd"; step = 3; op = None; what = "synthetic" }
  in
  let summary =
    { Check.Diff.subjects = [ "bsd" ]; programs = 1; ops = 10;
      mismatches = [ mismatch ] }
  in
  let report = Check.Report.v ~seed:1 summary [] in
  Alcotest.(check bool) "not passed" false (Check.Report.passed report);
  let path = Filename.temp_file "tcpdemux-check" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Check.Report.write path report;
      match Check.Report.validate_file path with
      | Ok () -> Alcotest.fail "failing report validated"
      | Error _ -> ());
  match Check.Report.validate_file "no-such-file.json" with
  | Ok () -> Alcotest.fail "missing report validated"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Chaos replay audit                                                  *)

let test_chaos_audit_all_scenarios () =
  (* Small but real: every fault scenario through the parallel
     pipeline, each run's worker logs replayed against the oracle.
     Degradation may shed work; it may not corrupt state or lose
     accounting — zero mismatches across the board. *)
  let t = Check.Chaos.run ~workers:2 ~ops:4_000 ~seed:17 () in
  Alcotest.(check int) "every scenario ran"
    (List.length Fault.Chaos.all)
    (List.length t.Check.Chaos.outcomes);
  List.iter
    (fun (o : Check.Chaos.scenario_outcome) ->
      let r = o.Check.Chaos.result in
      (match o.Check.Chaos.mismatches with
      | [] -> ()
      | m :: _ ->
        Alcotest.fail
          (Format.asprintf "%s: %a"
             (Fault.Chaos.scenario_name r.Fault.Chaos.scenario)
             Check.Diff.pp_mismatch m));
      Alcotest.(check int)
        (Fault.Chaos.scenario_name r.Fault.Chaos.scenario ^ " conservation")
        r.Fault.Chaos.offered
        (r.Fault.Chaos.delivered + r.Fault.Chaos.dropped_ops
        + r.Fault.Chaos.rejected_ops))
    t.Check.Chaos.outcomes;
  Alcotest.(check bool) "audit passed" true (Check.Chaos.passed t)

let test_chaos_report_round_trip () =
  let t = Check.Chaos.run ~workers:2 ~ops:2_000 ~seed:23 () in
  let path = Filename.temp_file "chaos" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Check.Chaos.write path t;
      match Check.Chaos.validate_file path with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("chaos report rejected: " ^ e))

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "check"
    [ ( "op",
        [ quick "print/parse round trip" test_op_round_trip_unit;
          quick "parse errors" test_op_parse_errors;
          QCheck_alcotest.to_alcotest qcheck_op_round_trip ] );
      ( "diff",
        [ quick "all algorithms agree with the oracle"
            test_diff_all_algorithms_clean;
          quick "deterministic" test_diff_is_deterministic;
          quick "obs counters" test_diff_obs_counters ] );
      ( "corpus",
        [ quick "replays clean on every subject" test_corpus_replays_clean;
          quick "robin-hood program is a displacement cluster"
            test_corpus_robin_hood_is_a_cluster;
          quick "robin-hood program catches the buggy table"
            test_corpus_robin_hood_catches_buggy_table;
          quick "guarded program sheds and still matches"
            test_corpus_guarded_sheds;
          quick "cuckoo-kick program crosses the kick/stash boundary"
            test_corpus_cuckoo_kick_crosses_stash ] );
      ( "fuzz",
        [ quick "planted bug caught, shrunk, replayable"
            test_fuzzer_catches_planted_bug;
          QCheck_alcotest.to_alcotest qcheck_shrink_properties;
          quick "campaign reports the failure"
            test_campaign_reports_planted_bug ] );
      ( "guarded",
        [ quick "eviction sets predicted by the shadow guard"
            test_guarded_eviction_sets_match;
          quick "evictions during incremental resize"
            test_guarded_eviction_during_resize ] );
      ( "parallel",
        [ quick "4-domain lockstep equals single domain"
            test_striped_four_domain_lockstep;
          quick "batch accounting equals scalar"
            test_batch_accounting_equals_scalar ] );
      ( "epoch",
        [ quick "4-domain lockstep equals single domain"
            test_epoch_four_domain_lockstep;
          quick "grace-period audit passes the real table"
            test_epoch_audit_real_table_passes;
          quick "grace-period audit catches the planted bug"
            test_epoch_audit_catches_buggy_epoch;
          quick "pinned reader survives the corpus churn"
            test_corpus_epoch_reclaim ] );
      ( "chaos",
        [ quick "every scenario audits clean" test_chaos_audit_all_scenarios;
          quick "report write/validate round trip"
            test_chaos_report_round_trip ] );
      ( "xval",
        [ quick "grid within tolerance" test_xval_grid_passes ] );
      ( "report",
        [ quick "write/validate round trip" test_report_round_trip;
          quick "rejects failures and missing files"
            test_report_rejects_failures ] ) ]
