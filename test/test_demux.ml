(* Tests for the PCB lookup algorithms: correctness (finds exactly
   what is inserted), the paper's cost-accounting discipline, and the
   behavioural signatures each algorithm is defined by. *)

let flow i = Sim.Topology.flow_of_client i
let flows n = Array.to_list (Sim.Topology.flows n)

let mean_examined demux =
  Demux.Lookup_stats.mean_examined
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)

let last_cost demux f =
  (* Cost of a single lookup = examined-counter delta around it. *)
  let before =
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)
      .Demux.Lookup_stats.pcbs_examined
  in
  let result = demux.Demux.Registry.lookup f in
  let after =
    (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)
      .Demux.Lookup_stats.pcbs_examined
  in
  (result, after - before)

let all_specs =
  Demux.Registry.
    [ Linear; Bsd; Mtf; Sr_cache;
      Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
      Hashed_mtf { chains = 19; hasher = Hashing.Hashers.multiplicative };
      Conn_id { capacity = 4096 }; Resizing_hash; Splay;
      Lru_cache { entries = 4 };
      (* Bounds high enough that the guard never sheds in these tests:
         the wrapper must then be behaviourally invisible. *)
      Guarded
        { spec = Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
          max_chain = 512; max_total = 65536 } ]

(* ------------------------------------------------------------------ *)
(* Generic correctness, every algorithm                                *)

let test_insert_lookup_remove spec () =
  let demux = Demux.Registry.create spec in
  let population = flows 50 in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) population;
  Alcotest.(check int) "population" 50 (demux.Demux.Registry.length ());
  (* Every inserted flow is found. *)
  List.iter
    (fun f ->
      match demux.Demux.Registry.lookup f with
      | Some pcb ->
        Alcotest.(check bool) "right pcb" true
          (Packet.Flow.equal pcb.Demux.Pcb.flow f)
      | None -> Alcotest.failf "%s lost a flow" demux.Demux.Registry.name)
    population;
  (* A stranger is not. *)
  Alcotest.(check bool) "stranger absent" true
    (demux.Demux.Registry.lookup (flow 999) = None);
  (* Remove half, check the partition. *)
  List.iteri
    (fun i f ->
      if i mod 2 = 0 then
        match demux.Demux.Registry.remove f with
        | Some _ -> ()
        | None -> Alcotest.fail "remove failed")
    population;
  Alcotest.(check int) "population halved" 25 (demux.Demux.Registry.length ());
  List.iteri
    (fun i f ->
      let found = demux.Demux.Registry.lookup f <> None in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d presence" i)
        (i mod 2 = 1) found)
    population

let test_duplicate_insert_rejected spec () =
  let demux = Demux.Registry.create spec in
  ignore (demux.Demux.Registry.insert (flow 1) ());
  match demux.Demux.Registry.insert (flow 1) () with
  | _ -> Alcotest.fail "duplicate insert accepted"
  | exception Invalid_argument _ -> ()

let test_remove_absent spec () =
  let demux = Demux.Registry.create spec in
  Alcotest.(check bool) "remove absent" true
    (demux.Demux.Registry.remove (flow 3) = None)

let test_stats_discipline spec () =
  (* lookups/found/not_found counters add up; examined grows. *)
  let demux = Demux.Registry.create spec in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  for i = 0 to 14 do
    ignore (demux.Demux.Registry.lookup (flow i))
  done;
  let s = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "lookups" 15 s.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "found" 10 s.Demux.Lookup_stats.found;
  Alcotest.(check int) "not found" 5 s.Demux.Lookup_stats.not_found;
  Alcotest.(check int) "inserts" 10 s.Demux.Lookup_stats.inserts;
  Alcotest.(check bool) "examined positive" true
    (s.Demux.Lookup_stats.pcbs_examined > 0);
  Alcotest.(check bool) "max <= total" true
    (s.Demux.Lookup_stats.max_examined <= s.Demux.Lookup_stats.pcbs_examined)

let test_iter_covers_population spec () =
  let demux = Demux.Registry.create spec in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 30);
  let seen = ref 0 in
  demux.Demux.Registry.iter (fun _ -> incr seen);
  Alcotest.(check int) "iter count" 30 !seen

let generic_cases =
  List.concat_map
    (fun spec ->
      let name = Demux.Registry.spec_name spec in
      [ Alcotest.test_case
          (name ^ ": insert/lookup/remove")
          `Quick (test_insert_lookup_remove spec);
        Alcotest.test_case (name ^ ": duplicate insert") `Quick
          (test_duplicate_insert_rejected spec);
        Alcotest.test_case (name ^ ": remove absent") `Quick
          (test_remove_absent spec);
        Alcotest.test_case (name ^ ": stats discipline") `Quick
          (test_stats_discipline spec);
        Alcotest.test_case (name ^ ": iter") `Quick
          (test_iter_covers_population spec) ])
    all_specs

(* ------------------------------------------------------------------ *)
(* Linear: cost = scan position from the head                          *)

let test_linear_cost_is_position () =
  let demux = Demux.Registry.create Demux.Registry.Linear in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  (* Insertion at head means flow 9 is first, flow 0 last. *)
  let _, cost_head = last_cost demux (flow 9) in
  Alcotest.(check int) "head costs 1" 1 cost_head;
  let _, cost_tail = last_cost demux (flow 0) in
  Alcotest.(check int) "tail costs 10" 10 cost_tail;
  let _, cost_mid = last_cost demux (flow 4) in
  Alcotest.(check int) "middle costs 6" 6 cost_mid;
  (* A miss scans everything. *)
  let result, cost_miss = last_cost demux (flow 77) in
  Alcotest.(check bool) "miss" true (result = None);
  Alcotest.(check int) "miss scans all" 10 cost_miss

(* ------------------------------------------------------------------ *)
(* BSD: one-entry cache in front of the same list                      *)

let test_bsd_cache_hit_costs_one () =
  let demux = Demux.Registry.create Demux.Registry.Bsd in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  let _, first = last_cost demux (flow 0) in
  (* Cache empty: probe skipped (no PCB yet cached), scan to tail. *)
  Alcotest.(check int) "cold lookup scans to position" 10 first;
  let _, second = last_cost demux (flow 0) in
  Alcotest.(check int) "cached repeat costs 1" 1 second;
  (* A different flow now pays cache probe + scan. *)
  let _, third = last_cost demux (flow 9) in
  Alcotest.(check int) "cache miss pays probe + scan" 2 third

let test_bsd_cache_invalidated_on_remove () =
  let demux = Demux.Bsd.create () in
  let population = flows 5 in
  List.iter (fun f -> ignore (Demux.Bsd.insert demux f ())) population;
  ignore (Demux.Bsd.lookup demux (flow 2));
  Alcotest.(check bool) "cached" true
    (match Demux.Bsd.cached_flow demux with
    | Some f -> Packet.Flow.equal f (flow 2)
    | None -> false);
  ignore (Demux.Bsd.remove demux (flow 2));
  Alcotest.(check bool) "cache cleared" true
    (Demux.Bsd.cached_flow demux = None);
  (* And the removed flow is really gone. *)
  Alcotest.(check bool) "gone" true (Demux.Bsd.lookup demux (flow 2) = None)

let test_bsd_hit_rate_on_trains () =
  (* Packet train of length 100 on one connection: 99 hits. *)
  let demux = Demux.Registry.create Demux.Registry.Bsd in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  for _ = 1 to 100 do
    ignore (demux.Demux.Registry.lookup (flow 5))
  done;
  let s = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "99 cache hits" 99 s.Demux.Lookup_stats.cache_hits

(* ------------------------------------------------------------------ *)
(* MTF: found PCB moves to the head                                    *)

let test_mtf_moves_to_front () =
  let demux = Demux.Mtf.create () in
  List.iter (fun f -> ignore (Demux.Mtf.insert demux f ())) (flows 10);
  ignore (Demux.Mtf.lookup demux (flow 0));
  Alcotest.(check bool) "front is flow 0" true
    (match Demux.Mtf.front_flow demux with
    | Some f -> Packet.Flow.equal f (flow 0)
    | None -> false)

let test_mtf_repeat_costs_one () =
  let demux = Demux.Registry.create Demux.Registry.Mtf in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  let _, first = last_cost demux (flow 0) in
  Alcotest.(check int) "cold cost = position" 10 first;
  let _, second = last_cost demux (flow 0) in
  Alcotest.(check int) "repeat costs 1" 1 second

let test_mtf_lru_order () =
  (* After touching 2,1,0 the list reads 0,1,2,... *)
  let demux = Demux.Registry.create Demux.Registry.Mtf in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 5);
  List.iter
    (fun i -> ignore (demux.Demux.Registry.lookup (flow i)))
    [ 2; 1; 0 ];
  let _, c0 = last_cost demux (flow 0) in
  let _, c1 = last_cost demux (flow 1) in
  Alcotest.(check int) "most recent costs 1" 1 c0;
  (* After looking up 0 again, 1 is second. *)
  Alcotest.(check int) "second most recent costs 2" 2 c1

(* ------------------------------------------------------------------ *)
(* SR cache: two one-entry caches, probe order by packet kind          *)

let test_sr_probe_order () =
  let demux = Demux.Sr_cache.create () in
  List.iter (fun f -> ignore (Demux.Sr_cache.insert demux f ())) (flows 10);
  (* Receive on flow 3 -> receive cache; send on flow 7 -> send cache. *)
  ignore (Demux.Sr_cache.lookup demux (flow 3));
  Demux.Sr_cache.note_send demux (flow 7);
  Alcotest.(check bool) "recv cache" true
    (match Demux.Sr_cache.cached_received_flow demux with
    | Some f -> Packet.Flow.equal f (flow 3)
    | None -> false);
  Alcotest.(check bool) "send cache" true
    (match Demux.Sr_cache.cached_sent_flow demux with
    | Some f -> Packet.Flow.equal f (flow 7)
    | None -> false);
  let stats = Demux.Sr_cache.stats demux in
  let probe kind f =
    let before =
      (Demux.Lookup_stats.snapshot stats).Demux.Lookup_stats.pcbs_examined
    in
    ignore (Demux.Sr_cache.lookup demux ~kind f);
    (Demux.Lookup_stats.snapshot stats).Demux.Lookup_stats.pcbs_examined
    - before
  in
  (* A data packet for flow 3 hits the receive cache first: cost 1. *)
  Alcotest.(check int) "data hits recv first" 1 (probe Demux.Types.Data (flow 3));
  (* An ack for flow 7 hits the send cache first: cost 1. *)
  Alcotest.(check int) "ack hits send first" 1
    (probe Demux.Types.Pure_ack (flow 7));
  (* A data packet for flow 7 (in the send cache) pays 2 probes.
     Note the previous ack lookup moved flow 7 into the receive cache
     too, so re-seed the receive cache with flow 3 first. *)
  ignore (Demux.Sr_cache.lookup demux ~kind:Demux.Types.Data (flow 3));
  Alcotest.(check int) "data finds send cache second" 2
    (probe Demux.Types.Data (flow 7))

let test_sr_full_miss_cost () =
  let demux = Demux.Registry.create Demux.Registry.Sr_cache in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  (* Warm both caches with flows other than the target. *)
  ignore (demux.Demux.Registry.lookup (flow 9));
  demux.Demux.Registry.note_send (flow 8);
  (* Flow 0 is at the tail (inserted first): 2 cache probes + scan 10. *)
  let _, cost = last_cost demux (flow 0) in
  Alcotest.(check int) "full miss = 2 + scan" 12 cost

let test_sr_remove_invalidates_caches () =
  let demux = Demux.Sr_cache.create () in
  List.iter (fun f -> ignore (Demux.Sr_cache.insert demux f ())) (flows 4);
  ignore (Demux.Sr_cache.lookup demux (flow 1));
  Demux.Sr_cache.note_send demux (flow 1);
  ignore (Demux.Sr_cache.remove demux (flow 1));
  Alcotest.(check bool) "recv cleared" true
    (Demux.Sr_cache.cached_received_flow demux = None);
  Alcotest.(check bool) "send cleared" true
    (Demux.Sr_cache.cached_sent_flow demux = None)

(* ------------------------------------------------------------------ *)
(* Sequent: per-chain caches, scans confined to the home chain         *)

let test_sequent_chain_confinement () =
  let chains = 19 in
  let demux =
    Demux.Sequent.create ~chains ~hasher:Hashing.Hashers.multiplicative ()
  in
  let population = flows 200 in
  List.iter (fun f -> ignore (Demux.Sequent.insert demux f ())) population;
  let lengths = Demux.Sequent.chain_lengths demux in
  Alcotest.(check int) "chains" chains (Array.length lengths);
  Alcotest.(check int) "population preserved" 200
    (Array.fold_left ( + ) 0 lengths);
  let longest = Array.fold_left max 0 lengths in
  (* No lookup may ever examine more than cache + longest chain. *)
  let stats = Demux.Sequent.stats demux in
  List.iter (fun f -> ignore (Demux.Sequent.lookup demux f)) population;
  let s = Demux.Lookup_stats.snapshot stats in
  Alcotest.(check bool)
    (Printf.sprintf "max %d <= 1 + longest %d" s.Demux.Lookup_stats.max_examined
       longest)
    true
    (s.Demux.Lookup_stats.max_examined <= longest + 1)

let test_sequent_cache_per_chain () =
  let demux = Demux.Registry.create
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 100);
  ignore (demux.Demux.Registry.lookup (flow 42));
  let _, repeat = last_cost demux (flow 42) in
  Alcotest.(check int) "chain cache hit costs 1" 1 repeat

let test_sequent_beats_bsd_on_oltp_shape () =
  (* Uniform-random lookups over 500 flows: hashed chains must examine
     far fewer PCBs than the single BSD list. *)
  let population = flows 500 in
  let run spec =
    let demux = Demux.Registry.create spec in
    List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) population;
    let rng = Numerics.Rng.create ~seed:4 in
    for _ = 1 to 2000 do
      ignore
        (demux.Demux.Registry.lookup
           (List.nth population (Numerics.Rng.int rng ~bound:500)))
    done;
    mean_examined demux
  in
  let bsd = run Demux.Registry.Bsd in
  let sequent =
    run
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequent %.1f at least 5x better than bsd %.1f" sequent bsd)
    true
    (sequent *. 5.0 < bsd)

let test_sequent_validation () =
  Alcotest.check_raises "chains 0"
    (Invalid_argument "Sequent.create: chains <= 0") (fun () ->
      ignore (Demux.Sequent.create ~chains:0 () : unit Demux.Sequent.t))

(* ------------------------------------------------------------------ *)
(* Hashed MTF                                                          *)

let test_hashed_mtf_repeat_costs_one () =
  let demux =
    Demux.Registry.create
      (Demux.Registry.Hashed_mtf
         { chains = 7; hasher = Hashing.Hashers.multiplicative })
  in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 100);
  ignore (demux.Demux.Registry.lookup (flow 31));
  let _, repeat = last_cost demux (flow 31) in
  Alcotest.(check int) "moved to chain front" 1 repeat

(* ------------------------------------------------------------------ *)
(* Connection IDs                                                      *)

let test_conn_id_always_one () =
  let demux = Demux.Registry.create (Demux.Registry.Conn_id { capacity = 64 }) in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 50);
  let rng = Numerics.Rng.create ~seed:5 in
  for _ = 1 to 500 do
    let _, cost = last_cost demux (flow (Numerics.Rng.int rng ~bound:50)) in
    Alcotest.(check int) "direct index costs 1" 1 cost
  done

let test_conn_id_recycling () =
  let demux = Demux.Conn_id.create ~capacity:2 () in
  ignore (Demux.Conn_id.insert demux (flow 0) ());
  ignore (Demux.Conn_id.insert demux (flow 1) ());
  (match Demux.Conn_id.insert demux (flow 2) () with
  | _ -> Alcotest.fail "over capacity"
  | exception Failure _ -> ());
  let id0 =
    match Demux.Conn_id.connection_id demux (flow 0) with
    | Some id -> id
    | None -> Alcotest.fail "no id"
  in
  ignore (Demux.Conn_id.remove demux (flow 0));
  ignore (Demux.Conn_id.insert demux (flow 2) ());
  Alcotest.(check (option int)) "id recycled" (Some id0)
    (Demux.Conn_id.connection_id demux (flow 2))

let test_conn_id_lookup_by_id () =
  let demux = Demux.Conn_id.create ~capacity:8 () in
  let pcb = Demux.Conn_id.insert demux (flow 3) () in
  (match Demux.Conn_id.lookup_by_id demux pcb.Demux.Pcb.id with
  | Some found -> Alcotest.(check int) "same pcb" pcb.Demux.Pcb.id found.Demux.Pcb.id
  | None -> Alcotest.fail "id lookup failed");
  Alcotest.(check bool) "bad id" true
    (Demux.Conn_id.lookup_by_id demux 99999 = None)

(* ------------------------------------------------------------------ *)
(* Resizing hash                                                       *)

let test_resizing_grows_and_stays_correct () =
  let demux = Demux.Resizing_hash.create ~initial_buckets:2 () in
  let population = flows 300 in
  List.iter (fun f -> ignore (Demux.Resizing_hash.insert demux f ())) population;
  Alcotest.(check bool) "grew" true (Demux.Resizing_hash.buckets demux >= 256);
  List.iter
    (fun f ->
      match Demux.Resizing_hash.lookup demux f with
      | Some _ -> ()
      | None -> Alcotest.fail "lost a flow across resizes")
    population;
  (* Load factor <= 1 keeps scans short. *)
  let stats = Demux.Resizing_hash.stats demux in
  let s = Demux.Lookup_stats.snapshot stats in
  Alcotest.(check bool)
    (Printf.sprintf "max scan small (%d)" s.Demux.Lookup_stats.max_examined)
    true
    (s.Demux.Lookup_stats.max_examined <= 8)

(* ------------------------------------------------------------------ *)
(* Splay tree                                                          *)

let test_splay_repeat_costs_one () =
  let demux = Demux.Registry.create Demux.Registry.Splay in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 200);
  ignore (demux.Demux.Registry.lookup (flow 57));
  (* The splayed node is at the root: one comparison. *)
  let _, repeat = last_cost demux (flow 57) in
  Alcotest.(check int) "root hit" 1 repeat

let test_splay_logarithmic_uniform () =
  (* Uniform-random lookups over 2000 keys must stay near O(log N) on
     average — far below any list scheme's N/2. *)
  let demux = Demux.Registry.create Demux.Registry.Splay in
  let flows = Sim.Topology.flows 2000 in
  Array.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) flows;
  let rng = Numerics.Rng.create ~seed:2 in
  for _ = 1 to 5000 do
    ignore (demux.Demux.Registry.lookup flows.(Numerics.Rng.int rng ~bound:2000))
  done;
  let mean = mean_examined demux in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f within ~4x log2(2000)=11" mean)
    true (mean < 45.0)

let test_splay_iter_in_key_order () =
  let demux = Demux.Splay.create () in
  let population = flows 50 in
  List.iter (fun f -> ignore (Demux.Splay.insert demux f ())) population;
  let collected = ref [] in
  Demux.Splay.iter (fun pcb -> collected := pcb.Demux.Pcb.flow :: !collected) demux;
  let collected = List.rev !collected in
  Alcotest.(check int) "all present" 50 (List.length collected);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Packet.Flow.compare a b < 0 && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "in-order traversal" true (sorted collected)

let test_splay_depth_shrinks_under_locality () =
  (* Hammering one key splays it to the root; depth statistics stay
     bounded by the population. *)
  let demux = Demux.Splay.create () in
  let population = flows 128 in
  List.iter (fun f -> ignore (Demux.Splay.insert demux f ())) population;
  let depth_before = Demux.Splay.depth demux in
  Alcotest.(check bool) "depth positive" true (depth_before >= 7);
  for _ = 1 to 50 do
    ignore (Demux.Splay.lookup demux (flow 100))
  done;
  Alcotest.(check bool) "depth bounded by population" true
    (Demux.Splay.depth demux <= 128)

let test_splay_remove_rejoins () =
  let demux = Demux.Splay.create () in
  let population = flows 64 in
  List.iter (fun f -> ignore (Demux.Splay.insert demux f ())) population;
  (* Remove every third key, confirm the rest survive in order. *)
  List.iteri
    (fun i f -> if i mod 3 = 0 then ignore (Demux.Splay.remove demux f))
    population;
  Alcotest.(check int) "population" (64 - 22) (Demux.Splay.length demux);
  List.iteri
    (fun i f ->
      let found = Demux.Splay.lookup demux f <> None in
      Alcotest.(check bool) (Printf.sprintf "key %d" i) (i mod 3 <> 0) found)
    population

(* ------------------------------------------------------------------ *)
(* LRU-K cache                                                         *)

let test_lru_hit_position_cost () =
  let demux = Demux.Registry.create (Demux.Registry.Lru_cache { entries = 4 }) in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 20);
  (* Touch 0,1,2,3: cache is [3;2;1;0]. *)
  List.iter (fun i -> ignore (demux.Demux.Registry.lookup (flow i))) [ 0; 1; 2; 3 ];
  let _, c3 = last_cost demux (flow 3) in
  Alcotest.(check int) "front of cache costs 1" 1 c3;
  (* After touching 3 again the LRU order is [3;2;1;0]; 0 is deepest. *)
  let _, c0 = last_cost demux (flow 0) in
  Alcotest.(check int) "back of cache costs 4" 4 c0

let test_lru_eviction () =
  let demux = Demux.Lru_cache.create ~entries:2 () in
  let population = flows 10 in
  List.iter (fun f -> ignore (Demux.Lru_cache.insert demux f ())) population;
  (* Fill the cache with 0 and 1, then touch 2: 0 must be evicted. *)
  List.iter (fun i -> ignore (Demux.Lru_cache.lookup demux (flow i))) [ 0; 1; 2 ];
  let stats = Demux.Lru_cache.stats demux in
  let probe f =
    let before =
      (Demux.Lookup_stats.snapshot stats).Demux.Lookup_stats.pcbs_examined
    in
    ignore (Demux.Lru_cache.lookup demux f);
    (Demux.Lookup_stats.snapshot stats).Demux.Lookup_stats.pcbs_examined - before
  in
  (* 2 is at cache front (1 probe); 0 was evicted, so it pays the two
     cache probes plus its list position. *)
  Alcotest.(check int) "2 cached" 1 (probe (flow 2));
  Alcotest.(check bool) "0 evicted" true (probe (flow 0) > 2)

let test_lru_remove_purges_cache () =
  let demux = Demux.Lru_cache.create ~entries:4 () in
  List.iter (fun f -> ignore (Demux.Lru_cache.insert demux f ())) (flows 5);
  ignore (Demux.Lru_cache.lookup demux (flow 1));
  ignore (Demux.Lru_cache.remove demux (flow 1));
  Alcotest.(check bool) "gone" true (Demux.Lru_cache.lookup demux (flow 1) = None);
  (* Re-inserting must not resurrect a stale cache entry pointing at
     the old PCB. *)
  ignore (Demux.Lru_cache.insert demux (flow 1) ());
  match Demux.Lru_cache.lookup demux (flow 1) with
  | Some pcb ->
    Alcotest.(check bool) "fresh pcb" true
      (Packet.Flow.equal pcb.Demux.Pcb.flow (flow 1))
  | None -> Alcotest.fail "lost after reinsert"

let test_lru_k1_equals_bsd_costs () =
  (* K = 1 must reproduce BSD's cost sequence on any access pattern. *)
  let lru = Demux.Registry.create (Demux.Registry.Lru_cache { entries = 1 }) in
  let bsd = Demux.Registry.create Demux.Registry.Bsd in
  let population = flows 30 in
  List.iter
    (fun f ->
      ignore (lru.Demux.Registry.insert f ());
      ignore (bsd.Demux.Registry.insert f ()))
    population;
  let rng = Numerics.Rng.create ~seed:21 in
  for _ = 1 to 500 do
    let f = flow (Numerics.Rng.int rng ~bound:30) in
    ignore (lru.Demux.Registry.lookup f);
    ignore (bsd.Demux.Registry.lookup f)
  done;
  Alcotest.(check int)
    "identical examined totals"
    (Demux.Lookup_stats.snapshot bsd.Demux.Registry.stats)
      .Demux.Lookup_stats.pcbs_examined
    (Demux.Lookup_stats.snapshot lru.Demux.Registry.stats)
      .Demux.Lookup_stats.pcbs_examined

(* ------------------------------------------------------------------ *)
(* Registry spec parsing                                               *)

let test_spec_of_string () =
  List.iter
    (fun (name, expect) ->
      match Demux.Registry.spec_of_string name with
      | Ok spec ->
        Alcotest.(check string) name expect (Demux.Registry.spec_name spec)
      | Error e -> Alcotest.fail e)
    [ ("bsd", "bsd"); ("mtf", "mtf"); ("linear", "linear");
      ("sr-cache", "sr-cache"); ("sequent", "sequent-19");
      ("sequent-100", "sequent-100"); ("hashed-mtf", "hashed-mtf-19");
      ("hashed-mtf-7", "hashed-mtf-7"); ("conn-id", "conn-id");
      ("resizing-hash", "resizing-hash"); ("splay", "splay");
      ("lru-cache", "lru-cache-8"); ("lru-cache-64", "lru-cache-64");
      ("guarded-bsd", "guarded-bsd");
      ("guarded-sequent-7", "guarded-sequent-7");
      ("guarded-guarded-mtf", "guarded-guarded-mtf") ];
  List.iter
    (fun bad ->
      match Demux.Registry.spec_of_string bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "nonsense"; "sequent-0"; "sequent--3"; ""; "guarded-"; "guarded-nonsense";
      "guarded-sequent-0"; "lru-cache-0" ];
  (* Rejections come with a message naming the offence. *)
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  (match Demux.Registry.spec_of_string "sequent-0" with
  | Error message ->
    Alcotest.(check bool)
      "error names the bad count" true
      (contains message "positive" && contains message "0")
  | Ok _ -> Alcotest.fail "accepted sequent-0")

(* Name-level round trip over every constructor: printing a spec and
   re-parsing it must succeed and print the same.  (Names do not
   encode hashers or guard bounds, so equality is on names, not on
   specs.) *)
let spec_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [ oneofl
          Demux.Registry.
            [ Linear; Bsd; Mtf; Sr_cache; Resizing_hash; Splay ];
        map
          (fun chains ->
            Demux.Registry.Sequent
              { chains; hasher = Hashing.Hashers.multiplicative })
          (int_range 1 512);
        map
          (fun chains ->
            Demux.Registry.Hashed_mtf
              { chains; hasher = Hashing.Hashers.multiplicative })
          (int_range 1 512);
        map
          (fun capacity -> Demux.Registry.Conn_id { capacity })
          (int_range 1 8192);
        map
          (fun entries -> Demux.Registry.Lru_cache { entries })
          (int_range 1 256) ]
  in
  base >>= fun spec ->
  oneof
    [ return spec;
      map2
        (fun max_chain max_total ->
          Demux.Registry.Guarded { spec; max_chain; max_total })
        (int_range 1 128) (int_range 1 4096) ]

let prop_spec_name_round_trip =
  QCheck.Test.make ~count:500 ~name:"spec_name/spec_of_string round trip"
    (QCheck.make ~print:Demux.Registry.spec_name spec_gen) (fun spec ->
      let name = Demux.Registry.spec_name spec in
      match Demux.Registry.spec_of_string name with
      | Ok reparsed -> String.equal name (Demux.Registry.spec_name reparsed)
      | Error message ->
        QCheck.Test.fail_reportf "%S did not re-parse: %s" name message)

(* ------------------------------------------------------------------ *)
(* Guarded: graceful degradation under overload                        *)

let guarded_sequent ~max_chain ~max_total =
  Demux.Registry.Guarded
    { spec = Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
      max_chain; max_total }

let test_guarded_caps_chain () =
  let max_chain = 8 in
  let demux = Demux.Registry.create (guarded_sequent ~max_chain ~max_total:2048) in
  let colliders =
    Sim.Attack_workload.colliding_flows
      ~hasher:Hashing.Hashers.multiplicative ~chains:19 ~count:30
  in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) colliders;
  Alcotest.(check int) "chain capped" max_chain (demux.Demux.Registry.length ());
  let snap = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "evictions counted" (30 - max_chain)
    snap.Demux.Lookup_stats.evictions;
  (* The LRU shed the oldest flows: early inserts miss, recent hit. *)
  let hit f = demux.Demux.Registry.lookup f <> None in
  List.iteri
    (fun i f ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d %s" i (if i < 30 - max_chain then "shed" else "kept"))
        (i >= 30 - max_chain) (hit f))
    colliders

let test_guarded_caps_total () =
  let demux = Demux.Registry.create (guarded_sequent ~max_chain:32 ~max_total:10) in
  List.iter
    (fun f -> ignore (demux.Demux.Registry.insert f ()))
    (flows 40);
  Alcotest.(check int) "total capped" 10 (demux.Demux.Registry.length ());
  let snap = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "evictions counted" 30 snap.Demux.Lookup_stats.evictions

let test_guarded_reject_new () =
  let config =
    Demux.Guarded.config ~policy:Demux.Guarded.Reject_new ~max_chain:4
      ~max_total:16 ~chains:1 ~hasher:Hashing.Hashers.multiplicative ()
  in
  let demux = Demux.Registry.guard config (Demux.Registry.create Demux.Registry.Bsd) in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 10);
  Alcotest.(check int) "first-come kept" 4 (demux.Demux.Registry.length ());
  let snap = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "rejections counted" 6 snap.Demux.Lookup_stats.rejections;
  Alcotest.(check int) "no evictions" 0 snap.Demux.Lookup_stats.evictions;
  (* Admitted flows stay reachable; rejected ones were never retained. *)
  List.iteri
    (fun i f ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d" i)
        (i < 4)
        (demux.Demux.Registry.lookup f <> None))
    (flows 10)

let test_guarded_lookup_refreshes_lru () =
  let demux = Demux.Registry.create (guarded_sequent ~max_chain:32 ~max_total:3) in
  let f0, f1, f2, f3 =
    (flow 0, flow 1, flow 2, flow 3)
  in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) [ f0; f1; f2 ];
  (* Touch f0 so f1 becomes the least recently seen, then overflow. *)
  ignore (demux.Demux.Registry.lookup f0);
  ignore (demux.Demux.Registry.insert f3 ());
  Alcotest.(check bool) "f0 refreshed, kept" true
    (demux.Demux.Registry.lookup f0 <> None);
  Alcotest.(check bool) "f1 was LRU, shed" true
    (demux.Demux.Registry.lookup f1 = None);
  Alcotest.(check bool) "f3 admitted" true
    (demux.Demux.Registry.lookup f3 <> None)

let test_guarded_remove_untracks () =
  let demux = Demux.Registry.create (guarded_sequent ~max_chain:32 ~max_total:4) in
  List.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) (flows 4);
  ignore (demux.Demux.Registry.remove (flow 0));
  Alcotest.(check int) "slot freed" 3 (demux.Demux.Registry.length ());
  ignore (demux.Demux.Registry.insert (flow 9) ());
  let snap = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "no eviction needed" 0 snap.Demux.Lookup_stats.evictions

(* ------------------------------------------------------------------ *)
(* Lookup_stats and Pcb primitives                                     *)

let test_lookup_stats_lifecycle () =
  let stats = Demux.Lookup_stats.create () in
  Demux.Lookup_stats.begin_lookup stats;
  Demux.Lookup_stats.examine stats ();
  Demux.Lookup_stats.examine stats ~count:3 ();
  Demux.Lookup_stats.end_lookup stats ~hit_cache:false ~found:true;
  Demux.Lookup_stats.begin_lookup stats;
  Demux.Lookup_stats.examine stats ();
  Demux.Lookup_stats.end_lookup stats ~hit_cache:true ~found:true;
  Demux.Lookup_stats.note_insert stats;
  Demux.Lookup_stats.note_remove stats;
  let s = Demux.Lookup_stats.snapshot stats in
  Alcotest.(check int) "lookups" 2 s.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "examined" 5 s.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "max" 4 s.Demux.Lookup_stats.max_examined;
  Alcotest.(check int) "hits" 1 s.Demux.Lookup_stats.cache_hits;
  Alcotest.(check int) "inserts" 1 s.Demux.Lookup_stats.inserts;
  Alcotest.(check int) "removes" 1 s.Demux.Lookup_stats.removes;
  Alcotest.(check (float 1e-9)) "mean" 2.5
    (Demux.Lookup_stats.mean_examined s);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Demux.Lookup_stats.hit_rate s);
  Demux.Lookup_stats.reset stats;
  let s = Demux.Lookup_stats.snapshot stats in
  Alcotest.(check int) "reset lookups" 0 s.Demux.Lookup_stats.lookups;
  Alcotest.(check bool) "reset mean is nan" true
    (Float.is_nan (Demux.Lookup_stats.mean_examined s))

let test_lookup_stats_merge () =
  let make lookups examined =
    let stats = Demux.Lookup_stats.create () in
    for _ = 1 to lookups do
      Demux.Lookup_stats.begin_lookup stats;
      Demux.Lookup_stats.examine stats ~count:examined ();
      Demux.Lookup_stats.end_lookup stats ~hit_cache:false ~found:true
    done;
    Demux.Lookup_stats.snapshot stats
  in
  let merged = Demux.Lookup_stats.merge_snapshots [ make 2 10; make 3 4 ] in
  Alcotest.(check int) "lookups" 5 merged.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "examined" 32 merged.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "max" 10 merged.Demux.Lookup_stats.max_examined;
  let empty = Demux.Lookup_stats.merge_snapshots [] in
  Alcotest.(check int) "empty merge" 0 empty.Demux.Lookup_stats.lookups

let test_pcb_counters () =
  let pcb = Demux.Pcb.make ~id:7 ~flow:(flow 7) () in
  Alcotest.(check int) "fresh rx" 0 pcb.Demux.Pcb.rx_packets;
  Demux.Pcb.note_rx pcb;
  Demux.Pcb.note_rx pcb;
  Demux.Pcb.note_tx pcb;
  Alcotest.(check int) "rx" 2 pcb.Demux.Pcb.rx_packets;
  Alcotest.(check int) "tx" 1 pcb.Demux.Pcb.tx_packets;
  Alcotest.(check bool) "matches own flow" true (Demux.Pcb.matches pcb (flow 7));
  Alcotest.(check bool) "rejects other" false (Demux.Pcb.matches pcb (flow 8))

(* ------------------------------------------------------------------ *)
(* Chain primitive                                                     *)

let test_chain_operations () =
  let chain = Demux.Chain.create () in
  Alcotest.(check bool) "empty" true (Demux.Chain.is_empty chain);
  let pcbs =
    List.map
      (fun i -> Demux.Pcb.make ~id:i ~flow:(flow i) ())
      [ 0; 1; 2; 3 ]
  in
  let nodes = List.map (Demux.Chain.push_front chain) pcbs in
  Alcotest.(check int) "length" 4 (Demux.Chain.length chain);
  (* push_front order: 3,2,1,0. *)
  let order = List.map (fun p -> p.Demux.Pcb.id) (Demux.Chain.to_list chain) in
  Alcotest.(check (list int)) "order" [ 3; 2; 1; 0 ] order;
  (* Move 0 (pushed first, hence at the tail) to the front. *)
  (match nodes with
  | tail_node :: _ -> Demux.Chain.move_to_front chain tail_node
  | [] -> assert false);
  let order = List.map (fun p -> p.Demux.Pcb.id) (Demux.Chain.to_list chain) in
  Alcotest.(check (list int)) "after mtf" [ 0; 3; 2; 1 ] order;
  (* Remove the middle. *)
  (match nodes with
  | _ :: _ :: n2 :: _ ->
    Demux.Chain.remove chain n2;
    Alcotest.check_raises "double remove"
      (Invalid_argument "Chain.remove: node not linked") (fun () ->
        Demux.Chain.remove chain n2)
  | _ -> assert false);
  let order = List.map (fun p -> p.Demux.Pcb.id) (Demux.Chain.to_list chain) in
  Alcotest.(check (list int)) "after remove" [ 0; 3; 1 ] order

let test_chain_scan_counts () =
  let chain = Demux.Chain.create () in
  let stats = Demux.Lookup_stats.create () in
  List.iter
    (fun i -> ignore (Demux.Chain.push_front chain (Demux.Pcb.make ~id:i ~flow:(flow i) ())))
    [ 0; 1; 2 ];
  Demux.Lookup_stats.begin_lookup stats;
  (* List is 2,1,0 — finding 0 examines 3 PCBs. *)
  (match Demux.Chain.scan chain ~stats (flow 0) with
  | Some node -> Alcotest.(check int) "found 0" 0 (Demux.Chain.pcb node).Demux.Pcb.id
  | None -> Alcotest.fail "scan failed");
  Demux.Lookup_stats.end_lookup stats ~hit_cache:false ~found:true;
  let s = Demux.Lookup_stats.snapshot stats in
  Alcotest.(check int) "examined 3" 3 s.Demux.Lookup_stats.pcbs_examined

(* ------------------------------------------------------------------ *)
(* QCheck: every algorithm agrees with a reference model               *)

type op = Insert of int | Remove of int | Lookup of int | Note_send of int

let arbitrary_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [ (4, map (fun i -> Insert i) (int_bound 40));
        (2, map (fun i -> Remove i) (int_bound 40));
        (6, map (fun i -> Lookup i) (int_bound 40));
        (1, map (fun i -> Note_send i) (int_bound 40)) ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert i -> Printf.sprintf "I%d" i
             | Remove i -> Printf.sprintf "R%d" i
             | Lookup i -> Printf.sprintf "L%d" i
             | Note_send i -> Printf.sprintf "S%d" i)
           ops))
    (list_size (int_range 1 200) op)

module Int_set = Set.Make (Int)

let model_agreement spec ops =
  let demux = Demux.Registry.create spec in
  let model = ref Int_set.empty in
  List.for_all
    (fun op ->
      match op with
      | Insert i ->
        if Int_set.mem i !model then (
          match demux.Demux.Registry.insert (flow i) () with
          | _ -> false (* duplicate must be rejected *)
          | exception Invalid_argument _ -> true)
        else begin
          ignore (demux.Demux.Registry.insert (flow i) ());
          model := Int_set.add i !model;
          true
        end
      | Remove i ->
        let removed = demux.Demux.Registry.remove (flow i) <> None in
        let expected = Int_set.mem i !model in
        model := Int_set.remove i !model;
        removed = expected
      | Lookup i ->
        let found = demux.Demux.Registry.lookup (flow i) <> None in
        found = Int_set.mem i !model
      | Note_send i ->
        demux.Demux.Registry.note_send (flow i);
        (* note_send never changes membership. *)
        demux.Demux.Registry.length () = Int_set.cardinal !model)
    ops
  && demux.Demux.Registry.length () = Int_set.cardinal !model

let model_tests =
  List.map
    (fun spec ->
      QCheck.Test.make ~count:150
        ~name:
          (Printf.sprintf "%s agrees with set model"
             (Demux.Registry.spec_name spec))
        arbitrary_ops (model_agreement spec))
    all_specs

let prop_lookup_count_invariant =
  QCheck.Test.make ~count:100 ~name:"stats.lookups counts every lookup"
    arbitrary_ops (fun ops ->
      let demux = Demux.Registry.create Demux.Registry.Bsd in
      let expected = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Insert i -> (
            try ignore (demux.Demux.Registry.insert (flow i) ())
            with Invalid_argument _ -> ())
          | Remove i -> ignore (demux.Demux.Registry.remove (flow i))
          | Lookup i ->
            incr expected;
            ignore (demux.Demux.Registry.lookup (flow i))
          | Note_send i -> demux.Demux.Registry.note_send (flow i))
        ops;
      (Demux.Lookup_stats.snapshot demux.Demux.Registry.stats)
        .Demux.Lookup_stats.lookups
      = !expected)

(* Per-stripe accounting (snapshot merge) and per-stripe histograms
   must both aggregate to exactly the whole-stream result: the
   parallel demultiplexers rely on the former, the observability
   export on the latter. *)
let prop_merge_snapshots_with_histograms =
  QCheck.Test.make ~count:200
    ~name:"merge_snapshots + histogram merge = whole stream"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 100) (int_bound 500))
        (int_bound 3))
    (fun (examined_counts, stripes) ->
      let stripes = stripes + 1 in
      let make_striped () =
        Array.init stripes (fun _ ->
            let stats = Demux.Lookup_stats.create () in
            let histogram = Obs.Histogram.create () in
            Demux.Lookup_stats.set_histogram stats (Some histogram);
            (stats, histogram))
      in
      let striped = make_striped () in
      let whole_stats = Demux.Lookup_stats.create () in
      let whole_histogram = Obs.Histogram.create () in
      Demux.Lookup_stats.set_histogram whole_stats (Some whole_histogram);
      let drive stats examined =
        Demux.Lookup_stats.begin_lookup stats;
        Demux.Lookup_stats.examine stats ~count:examined ();
        Demux.Lookup_stats.end_lookup stats ~hit_cache:(examined = 0)
          ~found:(examined land 1 = 0)
      in
      List.iteri
        (fun i examined ->
          drive (fst striped.(i mod stripes)) examined;
          drive whole_stats examined)
        examined_counts;
      let merged =
        Demux.Lookup_stats.merge_snapshots
          (Array.to_list
             (Array.map (fun (s, _) -> Demux.Lookup_stats.snapshot s) striped))
      in
      let merged_histogram =
        Obs.Histogram.merge_all
          (Array.to_list (Array.map snd striped))
      in
      merged = Demux.Lookup_stats.snapshot whole_stats
      && Obs.Histogram.buckets merged_histogram
         = Obs.Histogram.buckets whole_histogram
      && Obs.Histogram.summary merged_histogram
         = Obs.Histogram.summary whole_histogram)

(* ------------------------------------------------------------------ *)
(* Flow_key: packed immediate keys                                     *)

(* Random flows over the {e full} 32-bit address space — including
   addresses whose Int32 representation is negative, the case the
   unsigned packing must mask correctly. *)
let gen_flow_full_range =
  let open QCheck.Gen in
  let word16 = int_bound 0xFFFF in
  let endpoint =
    map3
      (fun hi lo port ->
        Packet.Flow.endpoint
          (Packet.Ipv4.addr_of_int32 (Int32.of_int ((hi lsl 16) lor lo)))
          port)
      word16 word16 word16
  in
  map2
    (fun local remote -> Packet.Flow.v ~local ~remote)
    endpoint endpoint

let arbitrary_flow =
  QCheck.make ~print:Packet.Flow.to_string gen_flow_full_range

let arbitrary_flow_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Packet.Flow.to_string a ^ " / " ^ Packet.Flow.to_string b)
    QCheck.Gen.(pair gen_flow_full_range gen_flow_full_range)

let prop_flow_key_round_trip =
  QCheck.Test.make ~count:500 ~name:"flow_key round-trips and hashes like bytes"
    arbitrary_flow (fun f ->
      let k = Demux.Flow_key.of_flow f in
      Packet.Flow.equal f (Demux.Flow_key.to_flow k)
      && Demux.Flow_key.w0 k = Demux.Flow_key.w0_of_flow f
      && Demux.Flow_key.w1 k = Demux.Flow_key.w1_of_flow f
      && Demux.Flow_key.hash k
         = Hashing.Hashers.hash Hashing.Hashers.multiplicative
             (Packet.Flow.to_key_bytes f)
      && Demux.Flow_key.hash_words (Demux.Flow_key.w0 k) (Demux.Flow_key.w1 k)
         = Demux.Flow_key.hash k)

let prop_flow_key_equality_agrees =
  QCheck.Test.make ~count:500 ~name:"flow_key equal/compare agree with Flow.equal"
    arbitrary_flow_pair (fun (a, b) ->
      let ka = Demux.Flow_key.of_flow a and kb = Demux.Flow_key.of_flow b in
      Demux.Flow_key.equal ka kb = Packet.Flow.equal a b
      && (Demux.Flow_key.compare ka kb = 0) = Packet.Flow.equal a b
      && Demux.Flow_key.equal_words ka ~w0:(Demux.Flow_key.w0 kb)
           ~w1:(Demux.Flow_key.w1 kb)
         = Packet.Flow.equal a b)

(* Companion to Flow_key's 63-bit startup guard: the extreme corners
   of the 4-tuple space — 0.0.0.0 and 255.255.255.255, ports 0 and
   65535 — must round-trip through the packed words, and the words
   themselves must stay non-negative OCaml immediates.  The all-ones
   address with port 65535 is the pattern that would spill into the
   sign bit if the 48-bit layout were off by one. *)
let gen_flow_boundary =
  let open QCheck.Gen in
  let addr =
    oneofl [ 0l; 0xFFFFFFFFl; 0x7FFFFFFFl; 0x80000000l; 1l; 0xFFFFFFFEl ]
  in
  let port = oneofl [ 0; 1; 32767; 32768; 65534; 65535 ] in
  let endpoint =
    map2
      (fun a p -> Packet.Flow.endpoint (Packet.Ipv4.addr_of_int32 a) p)
      addr port
  in
  map2 (fun local remote -> Packet.Flow.v ~local ~remote) endpoint endpoint

let prop_flow_key_boundary_round_trip =
  QCheck.Test.make ~count:300
    ~name:"flow_key round-trips at the 4-tuple boundary corners"
    (QCheck.make ~print:Packet.Flow.to_string gen_flow_boundary)
    (fun f ->
      let k = Demux.Flow_key.of_flow f in
      let w0 = Demux.Flow_key.w0 k and w1 = Demux.Flow_key.w1 k in
      w0 >= 0 && w1 >= 0
      && Packet.Flow.equal f (Demux.Flow_key.to_flow k)
      && Packet.Flow.equal f
           (Demux.Flow_key.to_flow (Demux.Flow_key.make ~w0 ~w1))
      && Demux.Flow_key.hash_words w0 w1 = Demux.Flow_key.hash k)

(* ------------------------------------------------------------------ *)
(* Flat_table: open-addressing index vs a Hashtbl reference model      *)

type ft_op = F_insert of int | F_remove of int | F_find of int

let arbitrary_flat_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [ (4, map (fun i -> F_insert i) (int_bound 60));
        (2, map (fun i -> F_remove i) (int_bound 60));
        (5, map (fun i -> F_find i) (int_bound 60)) ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | F_insert i -> Printf.sprintf "I%d" i
             | F_remove i -> Printf.sprintf "R%d" i
             | F_find i -> Printf.sprintf "F%d" i)
           ops))
    (list_size (int_range 1 300) op)

(* Drive the table and a Hashtbl through the same random op sequence.
   [hash] lets the property run again with degenerate hashes that
   force every key into colliding probe sequences — Robin-Hood
   displacement and backward-shift deletion must not lose or invent
   entries under maximal collision pressure either. *)
let flat_table_model_agreement ?hash () ops =
  let table = Demux.Flat_table.create ?hash ~initial_capacity:8 () in
  let model = Hashtbl.create 16 in
  let words i =
    let f = flow i in
    (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)
  in
  List.for_all
    (fun op ->
      match op with
      | F_insert i ->
        let w0, w1 = words i in
        Demux.Flat_table.replace table ~w0 ~w1 i;
        Hashtbl.replace model i i;
        Demux.Flat_table.find_opt table ~w0 ~w1 = Some i
      | F_remove i ->
        let w0, w1 = words i in
        Demux.Flat_table.remove table ~w0 ~w1;
        Hashtbl.remove model i;
        Demux.Flat_table.find_opt table ~w0 ~w1 = None
        && not (Demux.Flat_table.mem table ~w0 ~w1)
      | F_find i ->
        let w0, w1 = words i in
        Demux.Flat_table.find_opt table ~w0 ~w1 = Hashtbl.find_opt model i
        && (match Demux.Flat_table.find table ~w0 ~w1 with
           | v -> Hashtbl.find_opt model i = Some v
           | exception Not_found -> Hashtbl.find_opt model i = None))
    ops
  && Demux.Flat_table.length table = Hashtbl.length model
  && Demux.Flat_table.fold (fun ~w0:_ ~w1:_ _ n -> n + 1) table 0
     = Hashtbl.length model

let prop_flat_table_model =
  QCheck.Test.make ~count:200 ~name:"flat_table agrees with Hashtbl model"
    arbitrary_flat_ops
    (flat_table_model_agreement ())

let prop_flat_table_model_degenerate_hash =
  QCheck.Test.make ~count:100
    ~name:"flat_table agrees with model under forced collisions"
    arbitrary_flat_ops
    (fun ops ->
      flat_table_model_agreement ~hash:(fun _ _ -> 0) () ops
      && flat_table_model_agreement ~hash:(fun w0 _ -> w0 land 3) () ops)

(* ------------------------------------------------------------------ *)
(* Cuckoo_table: bucketized cuckoo hashing vs the same Hashtbl model   *)

(* Same drive as [flat_table_model_agreement], but over either Storage
   backend and with the hash pair injectable: degenerate pairs aim
   every key at one bucket pair, forcing BFS kick loops to exhaust
   and spill into the stash, and the table must still agree with the
   model key for key. *)
let cuckoo_model_agreement (module T : Demux.Cuckoo_table.S) ?hash1 ?hash2 ()
    ops =
  let table = T.create2 ?hash1 ?hash2 () in
  let model = Hashtbl.create 16 in
  let words i =
    let f = flow i in
    (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)
  in
  List.for_all
    (fun op ->
      match op with
      | F_insert i ->
        let w0, w1 = words i in
        T.replace table ~w0 ~w1 i;
        Hashtbl.replace model i i;
        T.find_opt table ~w0 ~w1 = Some i
      | F_remove i ->
        let w0, w1 = words i in
        T.remove table ~w0 ~w1;
        Hashtbl.remove model i;
        T.find_opt table ~w0 ~w1 = None && not (T.mem table ~w0 ~w1)
      | F_find i ->
        let w0, w1 = words i in
        T.find_opt table ~w0 ~w1 = Hashtbl.find_opt model i
        && (match T.find table ~w0 ~w1 with
           | v -> Hashtbl.find_opt model i = Some v
           | exception Not_found -> Hashtbl.find_opt model i = None)
        && T.probe_count table ~w0 ~w1 <= 2 + T.stash_len table)
    ops
  && T.length table = Hashtbl.length model
  && T.fold (fun ~w0:_ ~w1:_ _ n -> n + 1) table 0 = Hashtbl.length model
  && T.max_probe_length table <= 2 + T.stash_len table

let prop_cuckoo_model =
  QCheck.Test.make ~count:200
    ~name:"cuckoo_table agrees with Hashtbl model (heap + offheap)"
    arbitrary_flat_ops
    (fun ops ->
      cuckoo_model_agreement (module Demux.Cuckoo_table.Heap) () ops
      && cuckoo_model_agreement (module Demux.Cuckoo_table.Offheap) () ops)

(* Degenerate primary hash: every key's home is one of 4 buckets, so
   both buckets fill and inserts ride BFS kicks constantly while the
   honest secondary still spreads. *)
let prop_cuckoo_model_degenerate_primary =
  QCheck.Test.make ~count:100
    ~name:"cuckoo_table agrees with model under a degenerate primary hash"
    arbitrary_flat_ops
    (fun ops ->
      cuckoo_model_agreement (module Demux.Cuckoo_table.Heap)
        ~hash1:(fun w0 _ -> w0 land 3) () ops
      && cuckoo_model_agreement (module Demux.Cuckoo_table.Offheap)
           ~hash1:(fun w0 _ -> w0 land 3) () ops)

(* Both hashes constant: every key targets the same bucket pair, so
   past 16 keys each insert's BFS exhausts and spills to the stash.
   The key pool stays below the 2-buckets + stash bound (32), so this
   never trips the degenerate-overflow guard; the explicit bound test
   below does. *)
let arbitrary_small_pool_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [ (4, map (fun i -> F_insert i) (int_bound 23));
        (2, map (fun i -> F_remove i) (int_bound 23));
        (5, map (fun i -> F_find i) (int_bound 23)) ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | F_insert i -> Printf.sprintf "I%d" i
             | F_remove i -> Printf.sprintf "R%d" i
             | F_find i -> Printf.sprintf "F%d" i)
           ops))
    (list_size (int_range 1 300) op)

let prop_cuckoo_model_stash =
  QCheck.Test.make ~count:100
    ~name:"cuckoo_table agrees with model when kicks spill to the stash"
    arbitrary_small_pool_ops
    (fun ops ->
      cuckoo_model_agreement (module Demux.Cuckoo_table.Heap)
        ~hash1:(fun _ _ -> 0) ~hash2:(fun _ _ -> 1) () ops
      && cuckoo_model_agreement (module Demux.Cuckoo_table.Offheap)
           ~hash1:(fun _ _ -> 0) ~hash2:(fun _ _ -> 1) () ops)

(* Deterministic kick-chain + stash walk: with both hashes constant
   the victim pair holds exactly 2 buckets = 16 slots, so keys 17..20
   must live in the stash, lookups must still find all 20, and the
   probe bound must hold. *)
let test_cuckoo_kick_chain_into_stash () =
  let module T = Demux.Cuckoo_table.Heap in
  let table = T.create2 ~hash1:(fun _ _ -> 0) ~hash2:(fun _ _ -> 1) () in
  let words i =
    let f = flow i in
    (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)
  in
  for i = 0 to 19 do
    let w0, w1 = words i in
    T.replace table ~w0 ~w1 i
  done;
  Alcotest.(check int) "all resident" 20 (T.length table);
  Alcotest.(check int) "overflow sits in the stash" 4 (T.stash_len table);
  for i = 0 to 19 do
    let w0, w1 = words i in
    Alcotest.(check (option int))
      (Printf.sprintf "key %d found" i)
      (Some i)
      (T.find_opt table ~w0 ~w1)
  done;
  Alcotest.(check bool) "probe bound 2 buckets + stash" true
    (T.max_probe_length table <= 2 + T.stash_len table);
  (* Remove one bucket resident and one stash resident; both classes
     of removal must neither lose nor resurrect anything. *)
  let w0, w1 = words 3 in
  T.remove table ~w0 ~w1;
  Alcotest.(check (option int)) "bucket removal" None (T.find_opt table ~w0 ~w1);
  let w0, w1 = words 19 in
  T.remove table ~w0 ~w1;
  Alcotest.(check (option int)) "stash removal" None (T.find_opt table ~w0 ~w1);
  Alcotest.(check int) "population after removals" 18 (T.length table)

(* More keys target one bucket pair than 2 buckets + stash can hold:
   the insert must fail loudly after growth retries (growth cannot
   separate keys whose hashes are constants), not loop forever. *)
let test_cuckoo_degenerate_overflow_raises () =
  let module T = Demux.Cuckoo_table.Heap in
  let table = T.create2 ~hash1:(fun _ _ -> 0) ~hash2:(fun _ _ -> 1) () in
  let words i =
    let f = flow i in
    (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)
  in
  let raised = ref None in
  (try
     for i = 0 to 39 do
       let w0, w1 = words i in
       T.replace table ~w0 ~w1 i
     done
   with Invalid_argument msg -> raised := Some msg);
  Alcotest.(check bool) "insert past the bound raises" true (!raised <> None);
  Alcotest.(check int) "bound is 2 buckets + stash"
    (2 * Demux.Cuckoo_table.slots_per_bucket + Demux.Cuckoo_table.stash_capacity)
    (T.length table)

(* The negative-lookup filter: a miss whose tag class never overflowed
   out of its primary bucket must resolve after one bucket probe. *)
let test_cuckoo_filter_short_circuits_misses () =
  let module T = Demux.Cuckoo_table.Heap in
  let table = T.create () in
  let population = Sim.Topology.flows 64 in
  Array.iteri
    (fun i f ->
      T.replace table ~w0:(Demux.Flow_key.w0_of_flow f)
        ~w1:(Demux.Flow_key.w1_of_flow f) i)
    population;
  (* At 64 keys over >= 16 buckets no bucket can have overflowed
     (load is far below one bucket's 8 slots on average), so every
     absent key must short-circuit. *)
  Alcotest.(check int) "no stash at this load" 0 (T.stash_len table);
  let absent = Sim.Topology.flows 2048 in
  let worst = ref 0 in
  for i = 1024 to 2047 do
    let f = absent.(i) in
    let p =
      T.probe_count table ~w0:(Demux.Flow_key.w0_of_flow f)
        ~w1:(Demux.Flow_key.w1_of_flow f)
    in
    if p > !worst then worst := p
  done;
  Alcotest.(check bool)
    (Printf.sprintf "misses bounded by 2 (worst %d)" !worst)
    true (!worst <= 2)

let test_flat_table_grows () =
  let table = Demux.Flat_table.create ~initial_capacity:8 () in
  Alcotest.(check int) "starting capacity" 8 (Demux.Flat_table.capacity table);
  let n = 1_000 in
  for i = 0 to n - 1 do
    let f = flow i in
    Demux.Flat_table.replace table ~w0:(Demux.Flow_key.w0_of_flow f)
      ~w1:(Demux.Flow_key.w1_of_flow f) i
  done;
  Alcotest.(check int) "all present" n (Demux.Flat_table.length table);
  Alcotest.(check bool) "stayed under 7/8 load" true
    (Demux.Flat_table.length table * 8 <= Demux.Flat_table.capacity table * 7);
  for i = 0 to n - 1 do
    let f = flow i in
    Alcotest.(check int)
      (Printf.sprintf "entry %d survived the growth" i)
      i
      (Demux.Flat_table.find table ~w0:(Demux.Flow_key.w0_of_flow f)
         ~w1:(Demux.Flow_key.w1_of_flow f))
  done;
  (* Robin Hood keeps probe sequences short even at 1000 entries. *)
  Alcotest.(check bool) "probe lengths bounded" true
    (Demux.Flat_table.max_probe_length table < 32);
  Demux.Flat_table.clear table;
  Alcotest.(check int) "clear empties" 0 (Demux.Flat_table.length table)

(* ------------------------------------------------------------------ *)
(* Incremental resize: drain accounting and the dead-slot invariant    *)

let flat_words i =
  let f = flow i in
  (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)

let test_flat_table_no_resurrection () =
  (* Regression for the tombstone drain: once a migration starts the
     old region's layout is frozen and removes dead-mark instead of
     backshifting.  A dead slot keeps its stored words, so if it could
     ever satisfy a probe, removing an old-region resident and
     re-inserting the same key would later resurrect the stale
     binding.  Cross a boundary, churn exactly that pattern while the
     drain is in flight, then drain fully and audit every key. *)
  let table : int Demux.Flat_table.t = Demux.Flat_table.create () in
  let put i v =
    let w0, w1 = flat_words i in
    Demux.Flat_table.replace table ~w0 ~w1 v
  in
  let get i =
    let w0, w1 = flat_words i in
    Demux.Flat_table.find_opt table ~w0 ~w1
  in
  let del i =
    let w0, w1 = flat_words i in
    Demux.Flat_table.remove table ~w0 ~w1
  in
  for i = 0 to 28 do put i i done;
  (* The insert reaching population 29 fires the 32 -> 64 grow. *)
  Alcotest.(check bool) "migration in flight" true
    (Demux.Flat_table.pending_migration table > 0);
  del 3;
  Alcotest.(check (option int)) "removed while draining" None (get 3);
  put 3 1003;
  Alcotest.(check (option int)) "re-insert lands fresh" (Some 1003) (get 3);
  del 7;
  put 7 1007;
  (* Push the drain to completion with further inserts. *)
  for i = 29 to 40 do put i i done;
  Alcotest.(check int) "drain complete" 0
    (Demux.Flat_table.pending_migration table);
  Alcotest.(check (option int)) "no stale binding for 3" (Some 1003) (get 3);
  Alcotest.(check (option int)) "no stale binding for 7" (Some 1007) (get 7);
  for i = 0 to 40 do
    if i <> 3 && i <> 7 then
      Alcotest.(check (option int))
        (Printf.sprintf "key %d intact" i)
        (Some i) (get i)
  done;
  Alcotest.(check int) "population" 41 (Demux.Flat_table.length table);
  Alcotest.(check int) "fold agrees" 41
    (Demux.Flat_table.fold (fun ~w0:_ ~w1:_ _ n -> n + 1) table 0)

let test_flat_table_resize_accounting () =
  (* The observability counters behind bench E31 and the pressure
     controller's insert-latency watermark. *)
  let incremental : int Demux.Flat_table.t = Demux.Flat_table.create () in
  let doubling : int Demux.Flat_table.t =
    Demux.Flat_table.create ~resize:Demux.Flat_table.Doubling ()
  in
  let presized : int Demux.Flat_table.t =
    Demux.Flat_table.create ~initial_capacity:256 ()
  in
  for i = 0 to 99 do
    let w0, w1 = flat_words i in
    Demux.Flat_table.replace incremental ~w0 ~w1 i;
    Demux.Flat_table.replace doubling ~w0 ~w1 i;
    Demux.Flat_table.replace presized ~w0 ~w1 i
  done;
  Alcotest.(check bool) "incremental crossed >= 4 boundaries" true
    (Demux.Flat_table.resizes incremental >= 4);
  Alcotest.(check int) "same trigger, same count"
    (Demux.Flat_table.resizes incremental)
    (Demux.Flat_table.resizes doubling);
  Alcotest.(check int) "doubling never carries a drain" 0
    (Demux.Flat_table.pending_migration doubling);
  Alcotest.(check int) "pre-sized never resizes" 0
    (Demux.Flat_table.resizes presized);
  (* Whatever drain the last trigger left behind retires after a
     bounded number of further mutations. *)
  let budget = ref 0 in
  while Demux.Flat_table.pending_migration incremental > 0 do
    incr budget;
    if !budget > 1_000 then Alcotest.fail "drain never completed";
    let w0, w1 = flat_words (100 + !budget) in
    Demux.Flat_table.replace incremental ~w0 ~w1 0;
    Demux.Flat_table.remove incremental ~w0 ~w1
  done;
  Alcotest.(check int) "churning the drain out left the population alone" 100
    (Demux.Flat_table.length incremental)

let test_flat_table_policies_agree_under_churn () =
  (* Differential: the same deterministic churn through both resize
     policies must be observationally identical at every step. *)
  let incremental : int Demux.Flat_table.t = Demux.Flat_table.create () in
  let doubling : int Demux.Flat_table.t =
    Demux.Flat_table.create ~resize:Demux.Flat_table.Doubling ()
  in
  let rng = Numerics.Rng.create ~seed:77 in
  let pool = 300 in
  for step = 1 to 6_000 do
    let i = Numerics.Rng.int rng ~bound:pool in
    let w0, w1 = flat_words i in
    let roll = Numerics.Rng.int rng ~bound:100 in
    if roll < 45 then begin
      Demux.Flat_table.replace incremental ~w0 ~w1 step;
      Demux.Flat_table.replace doubling ~w0 ~w1 step
    end
    else if roll < 65 then begin
      Demux.Flat_table.remove incremental ~w0 ~w1;
      Demux.Flat_table.remove doubling ~w0 ~w1
    end
    else begin
      let a = Demux.Flat_table.find_opt incremental ~w0 ~w1
      and b = Demux.Flat_table.find_opt doubling ~w0 ~w1 in
      if a <> b then
        Alcotest.fail
          (Printf.sprintf "step %d key %d: incremental %s, doubling %s" step
             i
             (match a with Some v -> string_of_int v | None -> "miss")
             (match b with Some v -> string_of_int v | None -> "miss"))
    end
  done;
  Alcotest.(check int) "same final population"
    (Demux.Flat_table.length doubling)
    (Demux.Flat_table.length incremental);
  Alcotest.(check bool) "incremental resized repeatedly" true
    (Demux.Flat_table.resizes incremental >= 4);
  let contents t =
    List.sort compare
      (Demux.Flat_table.fold
         (fun ~w0 ~w1 v acc -> (w0, w1, v) :: acc)
         t [])
  in
  Alcotest.(check bool) "same final contents" true
    (contents incremental = contents doubling)

(* ------------------------------------------------------------------ *)
(* Zero-allocation regression: the Sequent hit path                    *)

(* [Gc.minor_words] delta across 10k warm lookups.  A single word
   allocated per lookup would show as 10k words; the slack of 64
   covers only the boxing of the float counters themselves. *)
let measure_minor_words iterations f =
  let before = Gc.minor_words () in
  for _ = 1 to iterations do
    f ()
  done;
  Gc.minor_words () -. before

let test_sequent_hit_path_zero_alloc () =
  let t = Demux.Sequent.create () in
  let population = Sim.Topology.flows 256 in
  Array.iter (fun f -> ignore (Demux.Sequent.insert t f ())) population;
  let target = population.(17) in
  (* Warm: fault code in and point the chain cache at the target. *)
  ignore (Demux.Sequent.lookup_pcb t target);
  let delta =
    measure_minor_words 10_000 (fun () ->
        ignore (Demux.Sequent.lookup_pcb t target))
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequent hit allocates nothing (minor-words delta %.0f)"
       delta)
    true (delta <= 64.0)

let test_flat_table_find_zero_alloc () =
  let table = Demux.Flat_table.create () in
  let population = Sim.Topology.flows 256 in
  Array.iteri
    (fun i f ->
      Demux.Flat_table.replace table ~w0:(Demux.Flow_key.w0_of_flow f)
        ~w1:(Demux.Flow_key.w1_of_flow f) i)
    population;
  let w0 = Demux.Flow_key.w0_of_flow population.(17)
  and w1 = Demux.Flow_key.w1_of_flow population.(17) in
  ignore (Demux.Flat_table.find table ~w0 ~w1);
  let delta =
    measure_minor_words 10_000 (fun () ->
        ignore (Demux.Flat_table.find table ~w0 ~w1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "flat find allocates nothing (minor-words delta %.0f)"
       delta)
    true (delta <= 64.0)

(* The warm-hit regression E35 gates: cuckoo lookups on either Storage
   backend allocate nothing once the table is built. *)
let cuckoo_find_zero_alloc (module T : Demux.Cuckoo_table.S) () =
  let table = T.create () in
  let population = Sim.Topology.flows 256 in
  Array.iteri
    (fun i f ->
      T.replace table ~w0:(Demux.Flow_key.w0_of_flow f)
        ~w1:(Demux.Flow_key.w1_of_flow f) i)
    population;
  let w0 = Demux.Flow_key.w0_of_flow population.(17)
  and w1 = Demux.Flow_key.w1_of_flow population.(17) in
  ignore (T.find table ~w0 ~w1);
  let delta =
    measure_minor_words 10_000 (fun () -> ignore (T.find table ~w0 ~w1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s cuckoo find allocates nothing (minor-words delta %.0f)"
       T.backend delta)
    true (delta <= 64.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    (prop_lookup_count_invariant :: prop_merge_snapshots_with_histograms
     :: prop_flow_key_round_trip :: prop_flow_key_equality_agrees
     :: prop_flow_key_boundary_round_trip
     :: prop_flat_table_model :: prop_flat_table_model_degenerate_hash
     :: prop_cuckoo_model :: prop_cuckoo_model_degenerate_primary
     :: prop_cuckoo_model_stash
     :: model_tests)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "demux"
    [ ("generic", generic_cases);
      ( "linear",
        [ Alcotest.test_case "cost = position" `Quick test_linear_cost_is_position ] );
      ( "bsd",
        [ Alcotest.test_case "cache hit costs 1" `Quick test_bsd_cache_hit_costs_one;
          Alcotest.test_case "cache invalidated on remove" `Quick
            test_bsd_cache_invalidated_on_remove;
          Alcotest.test_case "trains hit the cache" `Quick test_bsd_hit_rate_on_trains ] );
      ( "mtf",
        [ Alcotest.test_case "moves to front" `Quick test_mtf_moves_to_front;
          Alcotest.test_case "repeat costs 1" `Quick test_mtf_repeat_costs_one;
          Alcotest.test_case "LRU order" `Quick test_mtf_lru_order ] );
      ( "sr-cache",
        [ Alcotest.test_case "probe order by kind" `Quick test_sr_probe_order;
          Alcotest.test_case "full miss cost" `Quick test_sr_full_miss_cost;
          Alcotest.test_case "remove invalidates" `Quick
            test_sr_remove_invalidates_caches ] );
      ( "sequent",
        [ Alcotest.test_case "chain confinement" `Quick test_sequent_chain_confinement;
          Alcotest.test_case "per-chain cache" `Quick test_sequent_cache_per_chain;
          Alcotest.test_case "beats bsd on OLTP shape" `Quick
            test_sequent_beats_bsd_on_oltp_shape;
          Alcotest.test_case "validation" `Quick test_sequent_validation ] );
      ( "hashed-mtf",
        [ Alcotest.test_case "repeat costs 1" `Quick test_hashed_mtf_repeat_costs_one ] );
      ( "conn-id",
        [ Alcotest.test_case "always 1" `Quick test_conn_id_always_one;
          Alcotest.test_case "id recycling" `Quick test_conn_id_recycling;
          Alcotest.test_case "lookup by id" `Quick test_conn_id_lookup_by_id ] );
      ( "resizing-hash",
        [ Alcotest.test_case "grows, stays correct" `Quick
            test_resizing_grows_and_stays_correct ] );
      ( "lru-cache",
        [ Alcotest.test_case "hit position cost" `Quick test_lru_hit_position_cost;
          Alcotest.test_case "eviction" `Quick test_lru_eviction;
          Alcotest.test_case "remove purges cache" `Quick
            test_lru_remove_purges_cache;
          Alcotest.test_case "K=1 equals BSD" `Quick test_lru_k1_equals_bsd_costs ] );
      ( "splay",
        [ Alcotest.test_case "repeat costs 1" `Quick test_splay_repeat_costs_one;
          Alcotest.test_case "logarithmic on uniform" `Quick
            test_splay_logarithmic_uniform;
          Alcotest.test_case "in-order iteration" `Quick test_splay_iter_in_key_order;
          Alcotest.test_case "depth under locality" `Quick
            test_splay_depth_shrinks_under_locality;
          Alcotest.test_case "remove rejoins" `Quick test_splay_remove_rejoins ] );
      ( "registry",
        [ Alcotest.test_case "spec_of_string" `Quick test_spec_of_string;
          QCheck_alcotest.to_alcotest prop_spec_name_round_trip ] );
      ( "guarded",
        [ Alcotest.test_case "caps chain length" `Quick test_guarded_caps_chain;
          Alcotest.test_case "caps total population" `Quick
            test_guarded_caps_total;
          Alcotest.test_case "reject-new policy" `Quick test_guarded_reject_new;
          Alcotest.test_case "lookup refreshes LRU" `Quick
            test_guarded_lookup_refreshes_lru;
          Alcotest.test_case "remove frees slot" `Quick
            test_guarded_remove_untracks ] );
      ( "primitives",
        [ Alcotest.test_case "lookup_stats lifecycle" `Quick
            test_lookup_stats_lifecycle;
          Alcotest.test_case "lookup_stats merge" `Quick test_lookup_stats_merge;
          Alcotest.test_case "pcb counters" `Quick test_pcb_counters ] );
      ( "chain",
        [ Alcotest.test_case "operations" `Quick test_chain_operations;
          Alcotest.test_case "scan counts" `Quick test_chain_scan_counts ] );
      ( "flat-table",
        [ Alcotest.test_case "grows, stays correct" `Quick test_flat_table_grows;
          Alcotest.test_case "dead slots never resurrect a binding" `Quick
            test_flat_table_no_resurrection;
          Alcotest.test_case "resize and drain accounting" `Quick
            test_flat_table_resize_accounting;
          Alcotest.test_case "incremental and doubling agree under churn"
            `Quick test_flat_table_policies_agree_under_churn ] );
      ( "cuckoo-table",
        [ Alcotest.test_case "kick chain crosses into the stash" `Quick
            test_cuckoo_kick_chain_into_stash;
          Alcotest.test_case "degenerate overflow raises at the bound" `Quick
            test_cuckoo_degenerate_overflow_raises;
          Alcotest.test_case "filter short-circuits misses" `Quick
            test_cuckoo_filter_short_circuits_misses ] );
      ( "zero-alloc",
        [ Alcotest.test_case "sequent hit path" `Quick
            test_sequent_hit_path_zero_alloc;
          Alcotest.test_case "flat_table find" `Quick
            test_flat_table_find_zero_alloc;
          Alcotest.test_case "cuckoo find (heap)" `Quick
            (cuckoo_find_zero_alloc (module Demux.Cuckoo_table.Heap));
          Alcotest.test_case "cuckoo find (offheap)" `Quick
            (cuckoo_find_zero_alloc (module Demux.Cuckoo_table.Offheap)) ] );
      ("properties", qcheck_cases) ]
