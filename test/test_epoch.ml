(* Tests for lib/epoch: the reclamation core's safety properties, the
   lock-free table's read path (including its zero-allocation and
   zero-mutex guarantees), and a 4-domain reader/writer stress across
   mid-run growth — the concurrent half of what Epoch_audit checks
   deterministically in lib/check. *)

let flow i = Sim.Topology.flow_of_client i

(* ------------------------------------------------------------------ *)
(* Domain_slot: pins, nesting, the pool                                *)

let test_slot_pin_nesting () =
  let pool = Epoch.Domain_slot.create_pool ~max_readers:4 in
  let slot = Epoch.Domain_slot.acquire pool in
  let global = Atomic.make 5 in
  Alcotest.(check int) "unpinned" 0 (Epoch.Domain_slot.pinned_epoch slot);
  Epoch.Domain_slot.pin slot ~global;
  Alcotest.(check int) "pinned at the observed epoch" 5
    (Epoch.Domain_slot.pinned_epoch slot);
  (* The global moves on; a nested pin must keep the outer epoch — the
     conservative choice that lets a pinned caller invoke operations
     that pin internally. *)
  Atomic.set global 9;
  Epoch.Domain_slot.pin slot ~global;
  Alcotest.(check int) "nested pin keeps the outer epoch" 5
    (Epoch.Domain_slot.pinned_epoch slot);
  Alcotest.(check int) "depth 2" 2 (Epoch.Domain_slot.depth slot);
  Epoch.Domain_slot.unpin slot;
  Alcotest.(check int) "still pinned after inner unpin" 5
    (Epoch.Domain_slot.pinned_epoch slot);
  Alcotest.(check int) "two pins counted" 2 (Epoch.Domain_slot.total_pins pool);
  Alcotest.(check int) "horizon is the pin" 5 (Epoch.Domain_slot.min_pinned pool);
  Epoch.Domain_slot.unpin slot;
  Alcotest.(check int) "outermost unpin clears the slot" 0
    (Epoch.Domain_slot.pinned_epoch slot);
  Alcotest.(check int) "horizon opens" max_int
    (Epoch.Domain_slot.min_pinned pool);
  Alcotest.check_raises "unpin underflow"
    (Invalid_argument "Epoch.Domain_slot.unpin: not pinned") (fun () ->
      Epoch.Domain_slot.unpin slot)

let test_slot_pool_exhaustion_and_release () =
  let pool = Epoch.Domain_slot.create_pool ~max_readers:2 in
  let a = Epoch.Domain_slot.acquire pool in
  let _b = Epoch.Domain_slot.acquire pool in
  (match Epoch.Domain_slot.acquire pool with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "third acquire should exhaust the pool");
  let global = Atomic.make 1 in
  Epoch.Domain_slot.pin a ~global;
  Alcotest.check_raises "cannot release a pinned slot"
    (Invalid_argument "Epoch.Domain_slot.release: slot still pinned") (fun () ->
      Epoch.Domain_slot.release pool a);
  Epoch.Domain_slot.unpin a;
  Epoch.Domain_slot.release pool a;
  (* The freed slot is reusable. *)
  let c = Epoch.Domain_slot.acquire pool in
  Epoch.Domain_slot.pin c ~global;
  Alcotest.(check int) "recycled slot pins" 1
    (Epoch.Domain_slot.pinned_epoch c);
  Epoch.Domain_slot.unpin c

(* ------------------------------------------------------------------ *)
(* Core: grace periods                                                 *)

let test_core_retire_reclaim_drain () =
  let core = Epoch.Core.create ~max_readers:4 () in
  Alcotest.(check int) "epoch starts at 1" 1 (Epoch.Core.epoch core);
  let freed = Array.make 5 false in
  for i = 0 to 4 do
    Epoch.Core.retire core (fun () -> freed.(i) <- true)
  done;
  Alcotest.(check int) "all pending" 5 (Epoch.Core.pending core);
  Alcotest.(check int) "retirements counted" 5 (Epoch.Core.retirements core);
  (* No reader pinned: one reclaim frees everything. *)
  Alcotest.(check int) "reclaim frees all" 5 (Epoch.Core.reclaim core);
  Alcotest.(check bool) "free closures ran" true
    (Array.for_all (fun b -> b) freed);
  Alcotest.(check int) "nothing pending" 0 (Epoch.Core.pending core);
  Alcotest.(check int) "reclamations = retirements" 5
    (Epoch.Core.reclamations core);
  Alcotest.(check bool) "epoch advanced" true (Epoch.Core.epoch core > 1)

let test_core_pin_blocks_reclaim () =
  let core = Epoch.Core.create ~max_readers:4 () in
  let slot = Epoch.Domain_slot.acquire (Epoch.Core.pool core) in
  Epoch.Domain_slot.pin slot ~global:(Epoch.Core.global core);
  let freed = ref false in
  Epoch.Core.retire core (fun () -> freed := true);
  (* The object was retired at the pinned reader's epoch (or later),
     so no number of reclaim passes may free it. *)
  for _ = 1 to 4 do
    ignore (Epoch.Core.reclaim core)
  done;
  Alcotest.(check bool) "not freed while a reader is pinned" false !freed;
  Alcotest.(check int) "still pending" 1 (Epoch.Core.pending core);
  Epoch.Domain_slot.unpin slot;
  Epoch.Core.quiesce core;
  Alcotest.(check bool) "freed after unpin" true !freed;
  Alcotest.(check int) "drained" 0 (Epoch.Core.pending core);
  Alcotest.(check int) "every retirement reclaimed"
    (Epoch.Core.retirements core)
    (Epoch.Core.reclamations core)

(* The central safety property, as a qcheck model: interpret a random
   script of pin/unpin/retire/reclaim against one core and check,
   after every step, that no object a pinned reader could still see
   has been freed.  An object retired at stamp [s] is visible to a
   reader pinned at epoch [p] iff [s >= p] (it was still published
   when the reader pinned), so the invariant is: for every freed
   object and every currently pinned slot, [stamp < pinned_epoch]. *)
let qcheck_reclaim_never_frees_visible =
  QCheck.Test.make ~count:200
    ~name:"core: reclaim never frees what a pinned reader can see"
    QCheck.(list_of_size Gen.(0 -- 60) (0 -- 3))
    (fun script ->
      let core = Epoch.Core.create ~max_readers:4 () in
      let slots =
        Array.init 4 (fun _ -> Epoch.Domain_slot.acquire (Epoch.Core.pool core))
      in
      let next = ref 0 in
      let objects = ref [] in
      let ok = ref true in
      let invariant () =
        List.iter
          (fun (stamp, freed) ->
            if !freed then
              Array.iter
                (fun slot ->
                  let p = Epoch.Domain_slot.pinned_epoch slot in
                  if p > 0 && stamp >= p then ok := false)
                slots)
          !objects
      in
      List.iteri
        (fun i cmd ->
          let slot = slots.(i mod 4) in
          (match cmd with
          | 0 -> Epoch.Domain_slot.pin slot ~global:(Epoch.Core.global core)
          | 1 ->
            if Epoch.Domain_slot.depth slot > 0 then
              Epoch.Domain_slot.unpin slot
          | 2 ->
            let freed = ref false in
            let stamp = Epoch.Core.epoch core in
            incr next;
            objects := (stamp, freed) :: !objects;
            Epoch.Core.retire core (fun () -> freed := true)
          | _ -> ignore (Epoch.Core.reclaim core));
          invariant ())
        script;
      (* Unwind every pin, quiesce: the retire list must drain
         completely, with every retirement accounted as a
         reclamation. *)
      Array.iter
        (fun slot ->
          while Epoch.Domain_slot.depth slot > 0 do
            Epoch.Domain_slot.unpin slot
          done)
        slots;
      Epoch.Core.quiesce core;
      !ok
      && Epoch.Core.pending core = 0
      && Epoch.Core.retirements core = Epoch.Core.reclamations core
      && List.for_all (fun (_, freed) -> !freed) !objects)

(* ------------------------------------------------------------------ *)
(* Table: single-domain semantics                                      *)

let words f = (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)

let test_table_view_outlives_publishes () =
  let t = Epoch.Table.create () in
  for i = 0 to 6 do
    let w0, w1 = words (flow i) in
    Epoch.Table.replace t ~w0 ~w1 i
  done;
  let view = Epoch.Table.pin t in
  Alcotest.(check int) "view length at pin time" 7
    (Epoch.Table.view_length view);
  (* Overwrite one key and churn past a growth boundary: the live
     table changes, the pinned view must not. *)
  let w0, w1 = words (flow 3) in
  Epoch.Table.replace t ~w0 ~w1 300;
  for i = 7 to 40 do
    let w0, w1 = words (flow i) in
    Epoch.Table.replace t ~w0 ~w1 i
  done;
  Alcotest.(check (option int)) "table sees the overwrite" (Some 300)
    (Epoch.Table.find_opt t ~w0 ~w1);
  Alcotest.(check (option int)) "view sees the pin-time value" (Some 3)
    (Epoch.Table.view_find view ~w0 ~w1);
  Alcotest.(check int) "view length unchanged" 7
    (Epoch.Table.view_length view);
  Alcotest.(check bool) "regions backlogged behind the pin" true
    (Epoch.Table.pending t > 0);
  Epoch.Table.unpin t;
  Alcotest.check_raises "double unpin"
    (Invalid_argument "Epoch.Domain_slot.unpin: not pinned") (fun () ->
      Epoch.Table.unpin t);
  Epoch.Table.quiesce t;
  Alcotest.(check int) "backlog drains once unpinned" 0
    (Epoch.Table.pending t)

let test_table_batch_accounting_equals_scalar () =
  (* Mirror of the striped batch-accounting test: lookup_batch must
     charge exactly what the per-flow path charges, plus only the
     batch markers. *)
  let population = Array.init 300 flow in
  let make () =
    let t = Epoch.Table.create () in
    Epoch.Table.load t
      (Array.mapi
         (fun i f ->
           let w0, w1 = words f in
           (w0, w1, i))
         population);
    t
  in
  let rng = Numerics.Rng.create ~seed:11 in
  let burst =
    Array.init 4_096 (fun _ ->
        let i = Numerics.Rng.int rng ~bound:(300 * 8 / 7) in
        flow i)
  in
  let scalar = make () in
  let scalar_found = ref 0 in
  Array.iter
    (fun f -> if Epoch.Table.find_flow scalar f <> None then incr scalar_found)
    burst;
  let batched = make () in
  let batched_found = Epoch.Table.lookup_batch batched burst in
  Alcotest.(check int) "same hits" !scalar_found batched_found;
  let s = Epoch.Table.stats scalar and b = Epoch.Table.stats batched in
  Alcotest.(check int) "lookups" s.Demux.Lookup_stats.lookups
    b.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "pcbs_examined" s.Demux.Lookup_stats.pcbs_examined
    b.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "found" s.Demux.Lookup_stats.found
    b.Demux.Lookup_stats.found;
  Alcotest.(check int) "not_found" s.Demux.Lookup_stats.not_found
    b.Demux.Lookup_stats.not_found;
  Alcotest.(check int) "scalar path has no batches" 0
    s.Demux.Lookup_stats.batches;
  Alcotest.(check bool) "batched path marked batches" true
    (b.Demux.Lookup_stats.batches > 0)

let test_registry_facade () =
  let demux : int Demux.Registry.t = Epoch.Table.registry () in
  Alcotest.(check string) "name" "epoch-table" demux.Demux.Registry.name;
  for i = 0 to 19 do
    ignore (demux.Demux.Registry.insert (flow i) i)
  done;
  Alcotest.(check int) "length" 20 (demux.Demux.Registry.length ());
  (match demux.Demux.Registry.lookup ~kind:Demux.Types.Data (flow 7) with
  | Some pcb -> Alcotest.(check int) "payload" 7 pcb.Demux.Pcb.data
  | None -> Alcotest.fail "resident flow not found");
  (match demux.Demux.Registry.insert (flow 7) 700 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate insert must raise");
  (match demux.Demux.Registry.remove (flow 7) with
  | Some pcb -> Alcotest.(check int) "removed payload" 7 pcb.Demux.Pcb.data
  | None -> Alcotest.fail "remove lost the flow");
  Alcotest.(check bool) "miss after remove" true
    (demux.Demux.Registry.lookup ~kind:Demux.Types.Data (flow 7) = None);
  (* Flat-index accounting: exactly one PCB examined per lookup. *)
  let stats = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "one examined per lookup"
    stats.Demux.Lookup_stats.lookups stats.Demux.Lookup_stats.pcbs_examined

(* ------------------------------------------------------------------ *)
(* The read-path guarantees E33 leans on                               *)

let measure_minor_words iterations f =
  let before = Gc.minor_words () in
  for _ = 1 to iterations do
    f ()
  done;
  Gc.minor_words () -. before

let test_warm_lookup_zero_alloc () =
  let t = Epoch.Table.create () in
  Epoch.Table.load t
    (Array.init 256 (fun i ->
         let w0, w1 = words (flow i) in
         (w0, w1, i)));
  let target = flow 17 in
  (* Warm: registers this domain's reader slot and faults code in. *)
  ignore (Epoch.Table.find_flow t target);
  let delta =
    measure_minor_words 10_000 (fun () ->
        ignore (Epoch.Table.find_flow t target))
  in
  Alcotest.(check bool)
    (Printf.sprintf "epoch lookup allocates nothing (minor-words delta %.0f)"
       delta)
    true (delta <= 64.0)

let test_warm_read_phase_takes_no_mutex () =
  let t = Epoch.Table.create () in
  Epoch.Table.load t
    (Array.init 256 (fun i ->
         let w0, w1 = words (flow i) in
         (w0, w1, i)));
  (* Warm: the one-time reader registration is the last mutex the read
     path may ever take. *)
  ignore (Epoch.Table.find_flow t (flow 0));
  let before = Epoch.Table.lock_acquisitions t in
  for i = 0 to 9_999 do
    ignore (Epoch.Table.find_flow t (flow (i land 255)))
  done;
  Alcotest.(check int) "zero mutex acquisitions across 10k lookups" before
    (Epoch.Table.lock_acquisitions t);
  Alcotest.(check bool) "the counter is live, not vacuous" true (before > 0)

(* ------------------------------------------------------------------ *)
(* 4-domain reader/writer stress across mid-run growth                 *)

let test_four_domain_stress_mid_run_growth () =
  (* The concurrent half of the grace-period story, shaped like
     [Fault.Chaos.Mid_run_growth]: an insert-heavy script over a large
     distinct-flow population drives the table across every growth
     boundary while readers run.  One writer domain inserts flows
     [0..2047] (payload = index) and removes every 16th along the way;
     three reader domains hammer [find_flow] throughout.  A flow's
     payload is only ever its index, so any hit with a different
     payload is a use-after-reclaim (or torn read) anomaly. *)
  let total = 2_048 in
  let t = Epoch.Table.create () in
  let done_ = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to total - 1 do
          let w0, w1 = words (flow i) in
          Epoch.Table.replace t ~w0 ~w1 i;
          if i mod 16 = 15 then begin
            let w0, w1 = words (flow (i - 8)) in
            Epoch.Table.remove t ~w0 ~w1
          end
        done;
        Atomic.set done_ true)
  in
  let readers =
    List.init 3 (fun r ->
        Domain.spawn (fun () ->
            let rng = Numerics.Rng.create ~seed:(100 + r) in
            let anomalies = ref 0 and hits = ref 0 in
            while not (Atomic.get done_) do
              let i = Numerics.Rng.int rng ~bound:total in
              match Epoch.Table.find_flow t (flow i) with
              | Some v ->
                incr hits;
                if v <> i then incr anomalies
              | None -> ()
            done;
            (!hits, !anomalies)))
  in
  Domain.join writer;
  let hits, anomalies =
    List.fold_left
      (fun (h, a) d ->
        let h', a' = Domain.join d in
        (h + h', a + a'))
      (0, 0) readers
  in
  Alcotest.(check int) "no stale or torn reads" 0 anomalies;
  Alcotest.(check bool) "readers actually overlapped the writer" true
    (hits > 0);
  (* End state: every flow except the removed ones (index = 7 mod 16)
     is resident with its own index as payload. *)
  let expected_population = total - (total / 16) in
  Alcotest.(check int) "final population" expected_population
    (Epoch.Table.length t);
  for i = 0 to total - 1 do
    let expected = if i mod 16 = 7 then None else Some i in
    let w0, w1 = words (flow i) in
    if Epoch.Table.find_opt t ~w0 ~w1 <> expected then
      Alcotest.fail (Printf.sprintf "flow %d has the wrong final binding" i)
  done;
  Alcotest.(check bool) "crossed every growth boundary" true
    (Epoch.Table.capacity t >= 4_096);
  (* Accounting identities survive the concurrency. *)
  let stats = Epoch.Table.stats t in
  Alcotest.(check int) "found + not_found = lookups"
    stats.Demux.Lookup_stats.lookups
    (stats.Demux.Lookup_stats.found + stats.Demux.Lookup_stats.not_found);
  Alcotest.(check int) "inserts" total stats.Demux.Lookup_stats.inserts;
  Alcotest.(check int) "removes" (total / 16)
    stats.Demux.Lookup_stats.removes;
  (* And the grace periods drain. *)
  Epoch.Table.quiesce t;
  Alcotest.(check int) "retire backlog empty" 0 (Epoch.Table.pending t);
  let core = Epoch.Table.core t in
  Alcotest.(check int) "every retirement reclaimed"
    (Epoch.Core.retirements core)
    (Epoch.Core.reclamations core)

(* ------------------------------------------------------------------ *)
(* Dispatcher over the epoch table                                     *)

let test_dispatcher_over_epoch_table () =
  (* The pipeline integration: shard-time hashes feed
     [lookup_batch_keyed] directly (the dispatcher's default hasher is
     the table's default hash), and the lossless run conserves every
     packet. *)
  let population = Array.init 200 flow in
  let t = Epoch.Table.create () in
  Epoch.Table.load t
    (Array.mapi
       (fun i f ->
         let w0, w1 = words f in
         (w0, w1, i))
       population);
  let rng = Numerics.Rng.create ~seed:3 in
  let stream =
    Array.init 5_000 (fun _ -> flow (Numerics.Rng.int rng ~bound:250))
  in
  let expected_found =
    Array.fold_left
      (fun n f -> if Epoch.Table.find_flow t f <> None then n + 1 else n)
      0 stream
  in
  let result =
    Parallel.Dispatcher.run ~workers:3 ~batch:16
      ~lookup_batch:(fun batch ~hashes ->
        Epoch.Table.lookup_batch_keyed t batch ~hashes)
      stream
  in
  Alcotest.(check int) "all packets offered" 5_000
    result.Parallel.Dispatcher.packets;
  Alcotest.(check int) "all packets delivered" 5_000
    (Array.fold_left ( + ) 0 result.Parallel.Dispatcher.per_worker_packets);
  Alcotest.(check int) "found matches sequential" expected_found
    result.Parallel.Dispatcher.found;
  Alcotest.(check int) "lossless" 0 result.Parallel.Dispatcher.dropped_packets;
  Epoch.Table.quiesce t;
  Alcotest.(check int) "drained after the run" 0 (Epoch.Table.pending t)

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let test_register_obs () =
  let obs = Obs.Registry.create () in
  let t = Epoch.Table.create () in
  Epoch.Table.register_obs obs t;
  for i = 0 to 40 do
    let w0, w1 = words (flow i) in
    Epoch.Table.replace t ~w0 ~w1 i
  done;
  for i = 0 to 99 do
    ignore (Epoch.Table.find_flow t (flow (i mod 50)))
  done;
  Epoch.Table.quiesce t;
  let metrics = Obs.Registry.snapshot obs in
  let value name =
    match Obs.Registry.find metrics name with
    | Some { Obs.Registry.data = Obs.Registry.Counter n; _ } -> n
    | Some { Obs.Registry.data = Obs.Registry.Gauge n; _ } -> int_of_float n
    | _ -> Alcotest.fail ("missing metric " ^ name)
  in
  Alcotest.(check int) "lookups" 100 (value "epoch.table.lookups");
  Alcotest.(check int) "inserts" 41 (value "epoch.table.inserts");
  Alcotest.(check int) "resident" 41 (value "epoch.table.resident");
  Alcotest.(check int) "pending drained" 0 (value "epoch.table.pending");
  Alcotest.(check bool) "pins counted" true (value "epoch.table.pins" > 0);
  Alcotest.(check int) "retirements all reclaimed"
    (value "epoch.table.retirements")
    (value "epoch.table.reclamations");
  Alcotest.(check bool) "publishes counted" true
    (value "epoch.table.publishes" >= 41)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "epoch"
    [ ( "slot",
        [ quick "pin nesting keeps the outer epoch" test_slot_pin_nesting;
          quick "pool exhaustion and release"
            test_slot_pool_exhaustion_and_release ] );
      ( "core",
        [ quick "retire/reclaim drains when unpinned"
            test_core_retire_reclaim_drain;
          quick "a pinned reader blocks reclamation"
            test_core_pin_blocks_reclaim;
          QCheck_alcotest.to_alcotest qcheck_reclaim_never_frees_visible ] );
      ( "table",
        [ quick "pinned view outlives publishes"
            test_table_view_outlives_publishes;
          quick "batch accounting equals scalar"
            test_table_batch_accounting_equals_scalar;
          quick "registry facade" test_registry_facade ] );
      ( "read-path",
        [ quick "warm lookup allocates zero minor words"
            test_warm_lookup_zero_alloc;
          quick "warm read phase takes no mutex"
            test_warm_read_phase_takes_no_mutex ] );
      ( "stress",
        [ quick "4-domain readers across mid-run growth"
            test_four_domain_stress_mid_run_growth ] );
      ( "pipeline",
        [ quick "dispatcher over the epoch table"
            test_dispatcher_over_epoch_table ] );
      ( "obs",
        [ quick "registered metrics" test_register_obs ] ) ]
