(* Tests for the fault-injection layer: plan validation, per-fault
   behaviour, and stream-level determinism. *)

let endpoint a b c d port =
  Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets a b c d) port

let server = endpoint 192 168 1 1 8888
let client i = endpoint 10 0 (i / 256) (i mod 256) (40000 + i)

let segment ?(payload = "hello, fault layer") i =
  Packet.Segment.make ~src:(client i) ~dst:server
    ~flags:Packet.Tcp_header.flag_psh_ack ~seq:(Int32.of_int (1000 + i))
    ~payload ()

let wire ?payload i = Packet.Segment.to_bytes (segment ?payload i)
let stream n = List.init n (fun i -> wire i)

let hamming a b =
  if Bytes.length a <> Bytes.length b then max_int
  else begin
    let bits = ref 0 in
    Bytes.iteri
      (fun i byte ->
        let x = Char.code byte lxor Bytes.get_uint8 b i in
        for bit = 0 to 7 do
          if x land (1 lsl bit) <> 0 then incr bits
        done)
      a;
    !bits
  end

(* ------------------------------------------------------------------ *)
(* Plan                                                                *)

let test_plan_validation () =
  List.iter
    (fun make ->
      Alcotest.check_raises "rejects bad probability"
        (Invalid_argument "") (fun () ->
          try ignore (make ()) with Invalid_argument _ ->
            raise (Invalid_argument "")))
    [ (fun () -> Fault.Plan.v ~corrupt:(-0.1) ());
      (fun () -> Fault.Plan.v ~drop:1.5 ());
      (fun () -> Fault.Plan.v ~reorder:Float.nan ());
      (fun () -> Fault.Plan.v ~tuple_flip:Float.infinity ()) ];
  Alcotest.(check bool) "none is none" true (Fault.Plan.is_none Fault.Plan.none);
  Alcotest.(check bool) "zero rates are none" true
    (Fault.Plan.is_none (Fault.Plan.v ()));
  Alcotest.(check bool) "non-zero is not none" false
    (Fault.Plan.is_none (Fault.Plan.v ~drop:0.5 ()))

(* ------------------------------------------------------------------ *)
(* Single-fault behaviour                                              *)

let test_none_is_identity () =
  let injector = Fault.Injector.create Fault.Plan.none in
  let input = stream 20 in
  let output = Fault.Injector.feed_all injector input in
  Alcotest.(check int) "same count" 20 (List.length output);
  List.iter2
    (fun a b -> Alcotest.(check bytes) "unchanged" a b)
    input output;
  let c = Fault.Injector.counters injector in
  Alcotest.(check int) "fed" 20 c.Fault.Injector.fed;
  Alcotest.(check int) "emitted" 20 c.Fault.Injector.emitted

let test_drop_all () =
  let injector = Fault.Injector.create (Fault.Plan.v ~drop:1.0 ()) in
  let output = Fault.Injector.feed_all injector (stream 50) in
  Alcotest.(check int) "nothing delivered" 0 (List.length output);
  let c = Fault.Injector.counters injector in
  Alcotest.(check int) "all dropped" 50 c.Fault.Injector.dropped;
  Alcotest.(check int) "emitted" 0 c.Fault.Injector.emitted

let test_duplicate_all () =
  let injector = Fault.Injector.create (Fault.Plan.v ~duplicate:1.0 ()) in
  let input = wire 3 in
  let output = Fault.Injector.feed injector input in
  Alcotest.(check int) "two copies" 2 (List.length output);
  List.iter
    (fun copy -> Alcotest.(check bytes) "copy equals original" input copy)
    output

let test_truncate_all () =
  let injector = Fault.Injector.create (Fault.Plan.v ~truncate:1.0 ()) in
  List.iter
    (fun input ->
      match Fault.Injector.feed injector input with
      | [ out ] ->
        Alcotest.(check bool) "strictly shorter" true
          (Bytes.length out < Bytes.length input)
      | other -> Alcotest.failf "expected one packet, got %d" (List.length other))
    (stream 30)

let test_corrupt_flips_one_bit () =
  let injector = Fault.Injector.create (Fault.Plan.v ~corrupt:1.0 ()) in
  List.iter
    (fun input ->
      match Fault.Injector.feed injector input with
      | [ out ] ->
        Alcotest.(check int) "Hamming distance 1" 1 (hamming input out)
      | other -> Alcotest.failf "expected one packet, got %d" (List.length other))
    (stream 30)

let test_corrupt_never_mutates_input () =
  let injector =
    Fault.Injector.create (Fault.Plan.v ~corrupt:1.0 ~tuple_flip:1.0 ())
  in
  let input = wire 7 in
  let pristine = Bytes.copy input in
  ignore (Fault.Injector.feed injector input);
  Alcotest.(check bytes) "caller's buffer untouched" pristine input

let test_tuple_flip_stays_well_formed () =
  let injector = Fault.Injector.create (Fault.Plan.v ~tuple_flip:1.0 ()) in
  let originals = List.init 30 (fun i -> segment i) in
  List.iter
    (fun original ->
      let input = Packet.Segment.to_bytes original in
      match Fault.Injector.feed injector input with
      | [ out ] -> (
        match Packet.Segment.parse out ~off:0 with
        | Ok reparsed ->
          Alcotest.(check bool) "flow re-targeted" false
            (Packet.Flow.equal
               (Packet.Segment.flow original)
               (Packet.Segment.flow reparsed))
        | Error e -> Alcotest.failf "flipped segment no longer parses: %s" e)
      | other -> Alcotest.failf "expected one packet, got %d" (List.length other))
    originals

let test_reorder_swaps_neighbours () =
  (* A held packet is overtaken by the next packet that is not itself
     reordered, so at p=0.5 some neighbours swap.  (At p=1.0 the hold
     slot degenerates to a pure one-packet delay line and order is
     preserved.)  Nothing is lost once the stream is flushed. *)
  let injector = Fault.Injector.create ~seed:3 (Fault.Plan.v ~reorder:0.5 ()) in
  let input = stream 10 in
  let output = Fault.Injector.feed_all injector input in
  Alcotest.(check int) "conservation" 10 (List.length output);
  let key buf = Bytes.to_string buf in
  let sorted l = List.sort compare (List.map key l) in
  Alcotest.(check (list string)) "same multiset" (sorted input) (sorted output);
  Alcotest.(check bool) "order actually changed" true
    (List.map key input <> List.map key output)

(* ------------------------------------------------------------------ *)
(* Stream-level properties                                             *)

let mixed_plan =
  Fault.Plan.v ~corrupt:0.3 ~truncate:0.2 ~duplicate:0.2 ~reorder:0.2
    ~drop:0.15 ~tuple_flip:0.25 ()

let test_deterministic_per_seed () =
  let run seed =
    let injector = Fault.Injector.create ~seed mixed_plan in
    List.map Bytes.to_string (Fault.Injector.feed_all injector (stream 200))
  in
  Alcotest.(check (list string)) "same seed, same stream" (run 1) (run 1);
  Alcotest.(check bool) "different seed, different stream" true
    (run 1 <> run 2)

let test_counters_account_for_stream () =
  let injector = Fault.Injector.create ~seed:5 mixed_plan in
  let output = Fault.Injector.feed_all injector (stream 300) in
  let c = Fault.Injector.counters injector in
  Alcotest.(check int) "fed" 300 c.Fault.Injector.fed;
  Alcotest.(check int) "emitted matches output" (List.length output)
    c.Fault.Injector.emitted;
  (* Every non-dropped packet comes out exactly once, plus one per
     duplication. *)
  Alcotest.(check int) "conservation law"
    (300 - c.Fault.Injector.dropped + c.Fault.Injector.duplicated)
    c.Fault.Injector.emitted;
  Alcotest.(check bool) "all faults exercised" true
    (c.Fault.Injector.corrupted > 0 && c.Fault.Injector.truncated > 0
   && c.Fault.Injector.duplicated > 0 && c.Fault.Injector.reordered > 0
   && c.Fault.Injector.dropped > 0 && c.Fault.Injector.tuple_flipped > 0)

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "validation" `Quick test_plan_validation ] );
      ( "faults",
        [ Alcotest.test_case "none is identity" `Quick test_none_is_identity;
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_duplicate_all;
          Alcotest.test_case "truncate all" `Quick test_truncate_all;
          Alcotest.test_case "corrupt flips one bit" `Quick
            test_corrupt_flips_one_bit;
          Alcotest.test_case "input never mutated" `Quick
            test_corrupt_never_mutates_input;
          Alcotest.test_case "tuple flip stays well-formed" `Quick
            test_tuple_flip_stays_well_formed;
          Alcotest.test_case "reorder conserves packets" `Quick
            test_reorder_swaps_neighbours ] );
      ( "stream",
        [ Alcotest.test_case "deterministic per seed" `Quick
            test_deterministic_per_seed;
          Alcotest.test_case "counters account for stream" `Quick
            test_counters_account_for_stream ] ) ]
