(* Tests for the protocol-address hash suite and chain-balance
   metrics. *)

let key s = Bytes.of_string s

(* ------------------------------------------------------------------ *)
(* Known vectors                                                       *)

let test_crc32_known_vectors () =
  (* The classic zlib check value. *)
  Alcotest.(check int32)
    "crc32(123456789)" 0xCBF43926l
    (Hashing.Hashers.crc32_digest (key "123456789"));
  Alcotest.(check int32) "crc32(empty)" 0l (Hashing.Hashers.crc32_digest (key ""));
  Alcotest.(check int32)
    "crc32(a)" 0xE8B7BE43l
    (Hashing.Hashers.crc32_digest (key "a"))

let test_crc32_chaining () =
  (* Chained CRC over two halves differs from the simple concat only
     via the initial value contract we expose; check self-consistency:
     digest(ab) computed in one go is deterministic. *)
  let one_shot = Hashing.Hashers.crc32_digest (key "hello world") in
  let again = Hashing.Hashers.crc32_digest (key "hello world") in
  Alcotest.(check int32) "deterministic" one_shot again

let test_xor_fold_by_hand () =
  (* 16-bit big-endian words of "\x12\x34\x56\x78" are 0x1234, 0x5678. *)
  Alcotest.(check int)
    "xor fold" (0x1234 lxor 0x5678)
    (Hashing.Hashers.hash Hashing.Hashers.xor_fold (key "\x12\x34\x56\x78"))

let test_xor_fold_odd_tail () =
  (* Trailing odd byte contributes its raw value. *)
  Alcotest.(check int)
    "odd tail" (0x1234 lxor 0x56)
    (Hashing.Hashers.hash Hashing.Hashers.xor_fold (key "\x12\x34\x56"))

let test_add_fold_by_hand () =
  Alcotest.(check int)
    "add fold" (0x1234 + 0x5678)
    (Hashing.Hashers.hash Hashing.Hashers.add_fold (key "\x12\x34\x56\x78"))

let test_crc16_ccitt_known_vector () =
  (* CRC-16/CCITT-FALSE check value. *)
  Alcotest.(check int)
    "crc16(123456789)" 0x29B1
    (Hashing.Hashers.hash Hashing.Hashers.crc16_ccitt (key "123456789"));
  Alcotest.(check int)
    "crc16(empty) = init" 0xFFFF
    (Hashing.Hashers.hash Hashing.Hashers.crc16_ccitt (key ""))

let test_pearson_properties () =
  (* 16-bit range, deterministic, sensitive to single-byte changes. *)
  let h1 = Hashing.Hashers.hash Hashing.Hashers.pearson (key "flow-key-a") in
  let h2 = Hashing.Hashers.hash Hashing.Hashers.pearson (key "flow-key-b") in
  Alcotest.(check bool) "16-bit" true (h1 >= 0 && h1 <= 0xFFFF);
  Alcotest.(check bool) "sensitive" true (h1 <> h2)

let test_fnv1a_known_vector () =
  (* FNV-1a 64-bit of "a" is 0xAF63DC4C8601EC8C; we expose it shifted
     right by 2. *)
  Alcotest.(check int)
    "fnv1a(a)"
    (Int64.to_int (Int64.shift_right_logical 0xAF63DC4C8601EC8CL 2))
    (Hashing.Hashers.hash Hashing.Hashers.fnv1a (key "a"))

(* ------------------------------------------------------------------ *)
(* Generic behaviour                                                   *)

let test_all_non_negative () =
  let flows = Sim.Topology.flows 200 in
  List.iter
    (fun hasher ->
      Array.iter
        (fun flow ->
          let h = Hashing.Hashers.hash_flow hasher flow in
          if h < 0 then
            Alcotest.failf "%s produced negative hash"
              (Hashing.Hashers.name hasher))
        flows)
    Hashing.Hashers.all

let test_deterministic () =
  let flow = Sim.Topology.flow_of_client 17 in
  List.iter
    (fun hasher ->
      Alcotest.(check int)
        (Hashing.Hashers.name hasher)
        (Hashing.Hashers.hash_flow hasher flow)
        (Hashing.Hashers.hash_flow hasher flow))
    Hashing.Hashers.all

let test_flow_fast_path_matches_bytes () =
  (* The allocation-free flow hash must be bit-identical to hashing
     the flow's 12-byte key, for every hasher — with or without a
     direct [run_flow] path — and [bucket_flow] must agree with
     [bucket] over the key bytes. *)
  let flows = Sim.Topology.flows 500 in
  List.iter
    (fun hasher ->
      Array.iter
        (fun flow ->
          let via_bytes =
            Hashing.Hashers.hash hasher (Packet.Flow.to_key_bytes flow)
          in
          Alcotest.(check int)
            (Hashing.Hashers.name hasher ^ " flow = bytes")
            via_bytes
            (Hashing.Hashers.hash_flow hasher flow);
          Alcotest.(check int)
            (Hashing.Hashers.name hasher ^ " bucket_flow = bucket")
            (Hashing.Hashers.bucket hasher ~buckets:19
               (Packet.Flow.to_key_bytes flow))
            (Hashing.Hashers.bucket_flow hasher ~buckets:19 flow))
        flows)
    Hashing.Hashers.all

let test_words_fast_path_matches_bytes () =
  (* Same bit-identity bar for the packed-word entry points: hashing
     the two [Flow_key] words must equal hashing the canonical
     12-byte key, for every hasher — whether it has a direct
     [run_words] path or falls back to serialising the words. *)
  let flows = Sim.Topology.flows 500 in
  List.iter
    (fun hasher ->
      Array.iter
        (fun flow ->
          let w0 = Demux.Flow_key.w0_of_flow flow
          and w1 = Demux.Flow_key.w1_of_flow flow in
          Alcotest.(check int)
            (Hashing.Hashers.name hasher ^ " words = bytes")
            (Hashing.Hashers.hash hasher (Packet.Flow.to_key_bytes flow))
            (Hashing.Hashers.hash_words hasher w0 w1);
          Alcotest.(check int)
            (Hashing.Hashers.name hasher ^ " bucket_words = bucket")
            (Hashing.Hashers.bucket hasher ~buckets:19
               (Packet.Flow.to_key_bytes flow))
            (Hashing.Hashers.bucket_words hasher ~buckets:19 w0 w1))
        flows)
    Hashing.Hashers.all

let test_bucket_range_and_validation () =
  let k = key "any key" in
  List.iter
    (fun hasher ->
      let b = Hashing.Hashers.bucket hasher ~buckets:19 k in
      Alcotest.(check bool) "in range" true (b >= 0 && b < 19))
    Hashing.Hashers.all;
  Alcotest.check_raises "buckets 0"
    (Invalid_argument "Hashers.bucket: buckets <= 0") (fun () ->
      ignore (Hashing.Hashers.bucket Hashing.Hashers.crc32 ~buckets:0 k))

let test_of_name () =
  List.iter
    (fun hasher ->
      match Hashing.Hashers.of_name (Hashing.Hashers.name hasher) with
      | Ok found ->
        Alcotest.(check string) "name roundtrip" (Hashing.Hashers.name hasher)
          (Hashing.Hashers.name found)
      | Error e -> Alcotest.fail e)
    Hashing.Hashers.all;
  match Hashing.Hashers.of_name "nonsense" with
  | Ok _ -> Alcotest.fail "accepted nonsense"
  | Error _ -> ()

let test_spreads_real_flows () =
  (* Each hash must spread the simulated client population reasonably:
     with 2000 flows over 19 chains, no chain may exceed 2x the mean. *)
  let flows = Array.to_list (Sim.Topology.flows 2000) in
  List.iter
    (fun hasher ->
      let report = Hashing.Quality.evaluate_hash hasher ~buckets:19 flows in
      if report.Hashing.Quality.max_load > 211 then
        Alcotest.failf "%s skewed: max load %d (mean 105)"
          (Hashing.Hashers.name hasher)
          report.Hashing.Quality.max_load)
    Hashing.Hashers.all

(* ------------------------------------------------------------------ *)
(* Quality                                                             *)

let test_quality_perfect_balance () =
  (* 12 keys into 4 buckets, 3 each. *)
  let assignments = List.concat_map (fun b -> [ b; b; b ]) [ 0; 1; 2; 3 ] in
  let report = Hashing.Quality.evaluate ~buckets:4 assignments in
  Alcotest.(check int) "keys" 12 report.Hashing.Quality.keys;
  Alcotest.(check int) "max" 3 report.Hashing.Quality.max_load;
  Alcotest.(check int) "min" 3 report.Hashing.Quality.min_load;
  Alcotest.(check (float 1e-12)) "cv" 0.0
    report.Hashing.Quality.coefficient_of_variation;
  Alcotest.(check (float 1e-12)) "chi2" 0.0 report.Hashing.Quality.chi_square;
  (* Every key scans a 3-PCB chain: mean (3+1)/2 = 2. *)
  Alcotest.(check (float 1e-12)) "search cost" 2.0
    report.Hashing.Quality.expected_search_cost

let test_quality_worst_case () =
  (* Everything in one of 4 buckets. *)
  let report = Hashing.Quality.evaluate ~buckets:4 [ 2; 2; 2; 2; 2; 2; 2; 2 ] in
  Alcotest.(check int) "max" 8 report.Hashing.Quality.max_load;
  Alcotest.(check int) "min" 0 report.Hashing.Quality.min_load;
  (* All keys scan the 8-chain: (8+1)/2 = 4.5. *)
  Alcotest.(check (float 1e-12)) "search cost" 4.5
    report.Hashing.Quality.expected_search_cost;
  (* chi2 = sum (obs - 2)^2 / 2 = (36 + 3*4)/2 = 24. *)
  Alcotest.(check (float 1e-9)) "chi2" 24.0 report.Hashing.Quality.chi_square

let test_quality_empty () =
  let report = Hashing.Quality.evaluate ~buckets:5 [] in
  Alcotest.(check int) "keys" 0 report.Hashing.Quality.keys;
  Alcotest.(check (float 1e-12)) "search cost" 0.0
    report.Hashing.Quality.expected_search_cost

let test_quality_validation () =
  Alcotest.check_raises "bucket out of range"
    (Invalid_argument "Quality.evaluate: bucket index out of range") (fun () ->
      ignore (Hashing.Quality.evaluate ~buckets:3 [ 0; 3 ]));
  Alcotest.check_raises "no buckets"
    (Invalid_argument "Quality.evaluate: buckets <= 0") (fun () ->
      ignore (Hashing.Quality.evaluate ~buckets:0 []))

(* ------------------------------------------------------------------ *)
(* Avalanche                                                           *)

let test_avalanche_separates_families () =
  (* Byte-serial mixers approach the ideal 0.5 flip rate; folding
     schemes sit far below — the diagnostic behind the structured-key
     collapses. *)
  let rate h = (Hashing.Avalanche.measure h).Hashing.Avalanche.mean_flip_rate in
  List.iter
    (fun h ->
      let r = rate h in
      if r < 0.40 then
        Alcotest.failf "%s mixes poorly: %.3f" (Hashing.Hashers.name h) r)
    Hashing.Hashers.[ fnv1a; jenkins_oaat; crc32; crc16_ccitt; pearson ];
  List.iter
    (fun h ->
      let r = rate h in
      if r > 0.25 then
        Alcotest.failf "%s unexpectedly strong: %.3f" (Hashing.Hashers.name h) r)
    Hashing.Hashers.[ xor_fold; add_fold; multiplicative ]

let test_avalanche_report_sanity () =
  let r = Hashing.Avalanche.measure ~keys:8 ~key_length:4 ~output_bits:8
      Hashing.Hashers.jenkins_oaat
  in
  Alcotest.(check int) "trials" (8 * 32) r.Hashing.Avalanche.trials;
  Alcotest.(check bool) "rates within [0,1]" true
    (r.Hashing.Avalanche.mean_flip_rate >= 0.0
    && r.Hashing.Avalanche.mean_flip_rate <= 1.0
    && r.Hashing.Avalanche.worst_bit_rate <= r.Hashing.Avalanche.mean_flip_rate);
  Alcotest.check_raises "bad sizes"
    (Invalid_argument "Avalanche.measure: bad sizes") (fun () ->
      ignore (Hashing.Avalanche.measure ~output_bits:0 Hashing.Hashers.crc32))

let test_avalanche_deterministic () =
  let a = Hashing.Avalanche.measure Hashing.Hashers.crc32 in
  let b = Hashing.Avalanche.measure Hashing.Hashers.crc32 in
  Alcotest.(check (float 0.0)) "deterministic" a.Hashing.Avalanche.mean_flip_rate
    b.Hashing.Avalanche.mean_flip_rate

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let arbitrary_key =
  QCheck.map Bytes.of_string QCheck.(string_of_size (QCheck.Gen.int_range 0 64))

let prop_bucket_in_range =
  QCheck.Test.make ~count:500 ~name:"bucket always within range"
    QCheck.(pair arbitrary_key (int_range 1 1000))
    (fun (k, buckets) ->
      List.for_all
        (fun hasher ->
          let b = Hashing.Hashers.bucket hasher ~buckets k in
          b >= 0 && b < buckets)
        Hashing.Hashers.all)

let prop_hash_deterministic =
  QCheck.Test.make ~count:300 ~name:"hash(k) = hash(copy k)" arbitrary_key
    (fun k ->
      List.for_all
        (fun hasher ->
          Hashing.Hashers.hash hasher k
          = Hashing.Hashers.hash hasher (Bytes.copy k))
        Hashing.Hashers.all)

let prop_search_cost_at_least_ideal =
  QCheck.Test.make ~count:200
    ~name:"uneven chains never beat the even-split scan cost"
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 1 200) (int_range 0 19)))
    (fun (buckets, raw) ->
      let assignments = List.map (fun b -> b mod buckets) raw in
      let report = Hashing.Quality.evaluate ~buckets assignments in
      let keys = float_of_int report.Hashing.Quality.keys in
      let even = ((keys /. float_of_int buckets) +. 1.0) /. 2.0 in
      report.Hashing.Quality.expected_search_cost >= even -. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bucket_in_range; prop_hash_deterministic;
      prop_search_cost_at_least_ideal ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "hashing"
    [ ( "vectors",
        [ Alcotest.test_case "crc32 known" `Quick test_crc32_known_vectors;
          Alcotest.test_case "crc32 deterministic" `Quick test_crc32_chaining;
          Alcotest.test_case "xor-fold by hand" `Quick test_xor_fold_by_hand;
          Alcotest.test_case "xor-fold odd tail" `Quick test_xor_fold_odd_tail;
          Alcotest.test_case "add-fold by hand" `Quick test_add_fold_by_hand;
          Alcotest.test_case "crc16-ccitt known" `Quick test_crc16_ccitt_known_vector;
          Alcotest.test_case "pearson properties" `Quick test_pearson_properties;
          Alcotest.test_case "fnv1a known" `Quick test_fnv1a_known_vector ] );
      ( "behaviour",
        [ Alcotest.test_case "non-negative" `Quick test_all_non_negative;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "flow fast path = key bytes" `Quick
            test_flow_fast_path_matches_bytes;
          Alcotest.test_case "packed words = key bytes" `Quick
            test_words_fast_path_matches_bytes;
          Alcotest.test_case "bucket range" `Quick test_bucket_range_and_validation;
          Alcotest.test_case "of_name" `Quick test_of_name;
          Alcotest.test_case "spreads real flows" `Quick test_spreads_real_flows ] );
      ( "avalanche",
        [ Alcotest.test_case "separates families" `Quick
            test_avalanche_separates_families;
          Alcotest.test_case "report sanity" `Quick test_avalanche_report_sanity;
          Alcotest.test_case "deterministic" `Quick test_avalanche_deterministic ] );
      ( "quality",
        [ Alcotest.test_case "perfect balance" `Quick test_quality_perfect_balance;
          Alcotest.test_case "worst case" `Quick test_quality_worst_case;
          Alcotest.test_case "empty" `Quick test_quality_empty;
          Alcotest.test_case "validation" `Quick test_quality_validation ] );
      ("properties", qcheck_cases) ]
