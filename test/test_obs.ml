(* Tests for the observability subsystem: clocks, histograms, the
   JSON emitter/parser, the trace ring, the metric registry — and the
   property the whole design hangs on: attaching observability to
   Lookup_stats changes nothing about the accounting. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock_fixed_and_fun () =
  Alcotest.(check (float 0.0)) "fixed" 42.5
    (Obs.Clock.now (Obs.Clock.fixed 42.5));
  let ticks = ref 0.0 in
  let clock = Obs.Clock.of_fun (fun () -> !ticks) in
  Alcotest.(check (float 0.0)) "fun initial" 0.0 (Obs.Clock.now clock);
  ticks := 7.0;
  Alcotest.(check (float 0.0)) "fun follows source" 7.0 (Obs.Clock.now clock)

let test_clock_virtual () =
  let v = Obs.Clock.create_virtual ~start:10.0 () in
  let clock = Obs.Clock.read v in
  Alcotest.(check (float 0.0)) "start" 10.0 (Obs.Clock.now clock);
  Obs.Clock.advance v 2.5;
  Alcotest.(check (float 0.0)) "advance" 12.5 (Obs.Clock.now clock);
  Obs.Clock.set v 20.0;
  Alcotest.(check (float 0.0)) "set" 20.0 (Obs.Clock.now clock);
  Alcotest.check_raises "no going back"
    (Invalid_argument "Clock.set: time in the past") (fun () ->
      Obs.Clock.set v 5.0);
  Alcotest.check_raises "no negative advance"
    (Invalid_argument "Clock.advance: negative or NaN delta") (fun () ->
      Obs.Clock.advance v (-1.0))

let test_clock_wall_moves_forward () =
  let clock = Obs.Clock.wall () in
  let a = Obs.Clock.now clock in
  let b = Obs.Clock.now clock in
  Alcotest.(check bool) "monotone enough" true (b >= a)

let test_clock_monotonic () =
  (* The monotonic source can never run backwards — unlike wall time,
     consecutive reads are ordered by contract, not by luck. *)
  let clock = Obs.Clock.monotonic () in
  let previous = ref (Obs.Clock.now clock) in
  for _ = 1 to 1_000 do
    let t = Obs.Clock.now clock in
    if t < !previous then Alcotest.fail "monotonic clock went backwards";
    previous := t
  done;
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "ns reads ordered" true (b >= a);
  Alcotest.(check bool) "ns reads positive" true (a > 0)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_empty () =
  let h = Obs.Histogram.create () in
  Alcotest.(check bool) "empty" true (Obs.Histogram.is_empty h);
  Alcotest.(check int) "count" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "p99" 0 (Obs.Histogram.p99 h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Obs.Histogram.mean h))

let test_histogram_small_values_exact () =
  (* Below 2^sub_bits every value has its own bucket: percentiles are
     exact, not just bounded. *)
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.record h) [ 5; 1; 3; 2; 4 ];
  Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" 15 (Obs.Histogram.sum h);
  Alcotest.(check int) "min" 1 (Obs.Histogram.min_value h);
  Alcotest.(check int) "max" 5 (Obs.Histogram.max_value h);
  Alcotest.(check int) "p50" 3 (Obs.Histogram.percentile h 50.0);
  Alcotest.(check int) "p100 = max" 5 (Obs.Histogram.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Obs.Histogram.mean h)

let test_histogram_negative_clamps () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h (-7);
  Alcotest.(check int) "clamped to 0" 0 (Obs.Histogram.max_value h);
  Alcotest.(check int) "counted" 1 (Obs.Histogram.count h)

let test_histogram_clear () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h 1000;
  Obs.Histogram.clear h;
  Alcotest.(check bool) "empty again" true (Obs.Histogram.is_empty h);
  Alcotest.(check int) "max reset" 0 (Obs.Histogram.max_value h)

let test_histogram_max_int_top_bucket () =
  (* A clamped-to-max interval (the monotonic clock's worst case) must
     land in the top octave's last sub-bucket — counted, reported as
     max, and dominating every percentile — not wrap the bucket
     arithmetic or vanish into an overflow bin. *)
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h max_int;
  Alcotest.(check int) "counted" 1 (Obs.Histogram.count h);
  Alcotest.(check int) "max" max_int (Obs.Histogram.max_value h);
  Alcotest.(check int) "min" max_int (Obs.Histogram.min_value h);
  Alcotest.(check int) "p100" max_int (Obs.Histogram.percentile h 100.0);
  Obs.Histogram.record h 1;
  Obs.Histogram.record h 2;
  Alcotest.(check int) "p999 is the extreme" max_int (Obs.Histogram.p999 h);
  (match List.rev (Obs.Histogram.buckets h) with
  | (lo, hi, count) :: _ ->
    Alcotest.(check int) "top bucket holds it" 1 count;
    Alcotest.(check bool) "bounds bracket max_int" true
      (lo <= max_int && hi = max_int)
  | [] -> Alcotest.fail "no buckets");
  (* Round-tripping through [buckets]/[add] keeps the extreme. *)
  let copy = Obs.Histogram.create () in
  List.iter
    (fun (_, hi, count) -> Obs.Histogram.add copy hi ~count)
    (Obs.Histogram.buckets h);
  Alcotest.(check int) "restored max" max_int (Obs.Histogram.max_value copy)

let test_histogram_sum_saturates () =
  (* Two max_int samples: an int sum would wrap negative; the
     documented behaviour is saturation, keeping sum and mean lower
     bounds instead of nonsense. *)
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h max_int;
  Obs.Histogram.record h max_int;
  Alcotest.(check int) "sum saturates" max_int (Obs.Histogram.sum h);
  Alcotest.(check bool) "mean stays non-negative" true
    (Obs.Histogram.mean h >= 0.0);
  Obs.Histogram.add h max_int ~count:3;
  Alcotest.(check int) "add saturates too" max_int (Obs.Histogram.sum h);
  let into = Obs.Histogram.create () in
  Obs.Histogram.record into max_int;
  Obs.Histogram.merge_into ~into h;
  Alcotest.(check int) "merge saturates too" max_int
    (Obs.Histogram.sum into)

let test_histogram_sub_bits_validation () =
  Alcotest.check_raises "sub_bits too big"
    (Invalid_argument "Histogram.create: sub_bits outside 1-10") (fun () ->
      ignore (Obs.Histogram.create ~sub_bits:11 ()));
  Alcotest.check_raises "merge mismatch"
    (Invalid_argument "Histogram.merge_into: sub_bits mismatch") (fun () ->
      Obs.Histogram.merge_into
        ~into:(Obs.Histogram.create ~sub_bits:3 ())
        (Obs.Histogram.create ~sub_bits:5 ()))

(* The documented error bound: for any recorded v, the reported
   percentile never under-reports and overshoots by at most one
   sub-bucket width (relative error 2^-sub_bits). *)
let prop_percentile_error_bound =
  QCheck.Test.make ~count:500 ~name:"percentile within HDR error bound"
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1_000_000))
    (fun values ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.record h) values;
      let sorted = List.sort compare values in
      let n = List.length sorted in
      List.for_all
        (fun p ->
          let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
          let true_value = List.nth sorted (rank - 1) in
          let reported = Obs.Histogram.percentile h p in
          reported >= true_value
          && reported <= true_value + (true_value / 32) + 1)
        [ 10.0; 50.0; 90.0; 99.0; 99.9 ])

(* Merging any partition of a stream = histogram of the whole
   stream, bucket-for-bucket. *)
let prop_merge_is_partition_invariant =
  QCheck.Test.make ~count:300 ~name:"merge of a partition = whole stream"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 150) (int_bound 100_000))
        (int_bound 3))
    (fun (values, pieces) ->
      let pieces = pieces + 1 in
      let parts = Array.init pieces (fun _ -> Obs.Histogram.create ()) in
      let whole = Obs.Histogram.create () in
      List.iteri
        (fun i v ->
          Obs.Histogram.record parts.(i mod pieces) v;
          Obs.Histogram.record whole v)
        values;
      let merged = Obs.Histogram.merge_all (Array.to_list parts) in
      Obs.Histogram.buckets merged = Obs.Histogram.buckets whole
      && Obs.Histogram.count merged = Obs.Histogram.count whole
      && Obs.Histogram.sum merged = Obs.Histogram.sum whole
      && Obs.Histogram.max_value merged = Obs.Histogram.max_value whole
      && Obs.Histogram.p99 merged = Obs.Histogram.p99 whole)

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_basic_round_trip () =
  let value =
    Obs.Json.Obj
      [ ("name", Obs.Json.String "demux.examined");
        ("count", Obs.Json.Int 42);
        ("mean", Obs.Json.Float 1.5);
        ("empty", Obs.Json.Null);
        ("flag", Obs.Json.Bool true);
        ("xs", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]) ]
  in
  match Obs.Json.of_string (Obs.Json.to_string value) with
  | Ok parsed -> Alcotest.(check bool) "round trip" true (parsed = value)
  | Error message -> Alcotest.fail message

let test_json_escapes () =
  let s = "quote\" slash\\ newline\n tab\t unicode\xe2\x82\xac" in
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.String s)) with
  | Ok (Obs.Json.String back) -> Alcotest.(check string) "escaped" s back
  | Ok _ -> Alcotest.fail "not a string"
  | Error message -> Alcotest.fail message

let test_json_non_finite_floats_are_null () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parser_rejects_garbage () =
  List.iter
    (fun input ->
      match Obs.Json.of_string input with
      | Ok _ -> Alcotest.failf "accepted %S" input
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "'single'"; "{\"a\" 1}"; "tru" ]

let test_json_accessors () =
  let json =
    match Obs.Json.of_string {|{"a": {"b": [10, 2.5, "x", null]}}|} with
    | Ok j -> j
    | Error m -> Alcotest.fail m
  in
  let b = Option.bind (Obs.Json.member "a" json) (Obs.Json.member "b") in
  match Option.bind b Obs.Json.to_list_opt with
  | Some [ i; f; s; n ] ->
    Alcotest.(check (option int)) "int" (Some 10) (Obs.Json.to_int_opt i);
    Alcotest.(check (option (float 1e-9))) "float" (Some 2.5)
      (Obs.Json.to_float_opt f);
    Alcotest.(check (option string)) "string" (Some "x")
      (Obs.Json.to_string_opt s);
    Alcotest.(check bool) "null float is nan" true
      (match Obs.Json.to_float_opt n with
      | Some v -> Float.is_nan v
      | None -> false)
  | _ -> Alcotest.fail "structure"

(* Any tree the emitter can print, the parser reads back
   identically. *)
let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self size ->
      let scalar =
        oneof
          [ return Obs.Json.Null;
            map (fun b -> Obs.Json.Bool b) bool;
            map (fun i -> Obs.Json.Int i) int;
            map (fun f -> Obs.Json.Float f) (float_bound_inclusive 1e9);
            map (fun s -> Obs.Json.String s) (string_size (0 -- 12)) ]
      in
      if size <= 0 then scalar
      else
        frequency
          [ (3, scalar);
            ( 1,
              map
                (fun xs -> Obs.Json.List xs)
                (list_size (0 -- 4) (self (size / 2))) );
            ( 1,
              map
                (fun kvs -> Obs.Json.Obj kvs)
                (list_size (0 -- 4)
                   (pair (string_size (0 -- 8)) (self (size / 2)))) ) ])

let prop_json_round_trip =
  QCheck.Test.make ~count:300 ~name:"emit/parse round trip"
    (QCheck.make ~print:Obs.Json.to_string json_gen)
    (fun value ->
      match Obs.Json.of_string (Obs.Json.to_string value) with
      | Ok parsed -> parsed = value
      | Error message -> QCheck.Test.fail_reportf "parse failed: %s" message)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_disabled_is_noop () =
  let t = Obs.Trace.disabled in
  Obs.Trace.record t Obs.Trace.Cache_hit 1 2;
  Alcotest.(check bool) "not enabled" false (Obs.Trace.enabled t);
  Alcotest.(check int) "length 0" 0 (Obs.Trace.length t);
  Alcotest.(check int) "capacity 0" 0 (Obs.Trace.capacity t);
  Alcotest.(check bool) "no events" true (Obs.Trace.to_list t = [])

let test_trace_ring_wrap () =
  let clock = Obs.Clock.create_virtual () in
  let t = Obs.Trace.create ~clock:(Obs.Clock.read clock) ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Clock.advance clock 1.0;
    Obs.Trace.record t Obs.Trace.Chain_walk i 0
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Trace.length t);
  Alcotest.(check int) "recorded all" 10 (Obs.Trace.recorded t);
  Alcotest.(check int) "dropped the rest" 6 (Obs.Trace.dropped t);
  let kept = List.map (fun r -> r.Obs.Trace.a) (Obs.Trace.to_list t) in
  Alcotest.(check (list int)) "last four, oldest first" [ 7; 8; 9; 10 ] kept;
  let times = List.map (fun r -> r.Obs.Trace.time) (Obs.Trace.to_list t) in
  Alcotest.(check (list (float 0.0))) "virtual timestamps"
    [ 7.0; 8.0; 9.0; 10.0 ] times

let test_trace_kind_codes_round_trip () =
  List.iter
    (fun kind ->
      match Obs.Trace.kind_of_code (Obs.Trace.kind_code kind) with
      | Some back ->
        Alcotest.(check string) "code round trip" (Obs.Trace.kind_name kind)
          (Obs.Trace.kind_name back)
      | None -> Alcotest.failf "kind %s lost" (Obs.Trace.kind_name kind))
    Obs.Trace.
      [ Lookup_begin; Lookup_end; Cache_hit; Chain_walk; Insert; Remove;
        Eviction; Rejection; Drop; Phase; Latency; Batch ];
  Alcotest.(check bool) "unknown code" true (Obs.Trace.kind_of_code 99 = None)

let test_trace_binary_round_trip () =
  let clock = Obs.Clock.create_virtual () in
  let a = Obs.Trace.create ~clock:(Obs.Clock.read clock) ~id:3 ~capacity:16 () in
  let b = Obs.Trace.create ~clock:(Obs.Clock.read clock) ~id:7 ~capacity:16 () in
  Obs.Clock.advance clock 1.5;
  Obs.Trace.record a Obs.Trace.Lookup_begin 0 0;
  Obs.Trace.record a Obs.Trace.Lookup_end 12 1;
  Obs.Clock.advance clock 0.5;
  Obs.Trace.record b Obs.Trace.Drop 2 60;
  let path = Filename.temp_file "obs" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Obs.Trace.dump a oc;
      Obs.Trace.dump b oc;
      close_out oc;
      match Obs.Trace.read_file path with
      | Error message -> Alcotest.fail message
      | Ok segments -> (
        Alcotest.(check (list int)) "segment ids" [ 3; 7 ]
          (List.map fst segments);
        match segments with
        | [ (_, [ begin_; end_ ]); (_, [ drop ]) ] ->
          Alcotest.(check string) "kind" "lookup-begin"
            (Obs.Trace.kind_name begin_.Obs.Trace.kind);
          Alcotest.(check (float 0.0)) "time" 1.5 begin_.Obs.Trace.time;
          Alcotest.(check int) "payload a" 12 end_.Obs.Trace.a;
          Alcotest.(check int) "payload b" 1 end_.Obs.Trace.b;
          Alcotest.(check string) "drop kind" "drop"
            (Obs.Trace.kind_name drop.Obs.Trace.kind);
          Alcotest.(check int) "drop size" 60 drop.Obs.Trace.b
        | _ -> Alcotest.fail "wrong segment shapes"))

let test_trace_read_rejects_bad_magic () =
  let path = Filename.temp_file "obs" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      match Obs.Trace.read_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted bad magic")

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_snapshot () =
  let obs = Obs.Registry.create () in
  let hits = ref 0 in
  Obs.Registry.register_counter obs ~help:"cache hits" ~name:"demo.hits"
    (fun () -> !hits);
  Obs.Registry.register_gauge obs ~units:"pcbs" ~name:"demo.pcbs" (fun () ->
      3.5);
  let owned = Obs.Registry.counter obs "demo.owned" in
  incr owned;
  incr owned;
  let h = Obs.Registry.histogram obs ~units:"us" "demo.latency" in
  Obs.Histogram.record h 100;
  Obs.Histogram.record h 200;
  hits := 7;
  Alcotest.(check int) "size" 4 (Obs.Registry.size obs);
  let snapshot = Obs.Registry.snapshot obs in
  (match Obs.Registry.find snapshot "demo.hits" with
  | Some { Obs.Registry.data = Obs.Registry.Counter 7; _ } -> ()
  | _ -> Alcotest.fail "polled counter read at snapshot time");
  (match Obs.Registry.find snapshot "demo.owned" with
  | Some { Obs.Registry.data = Obs.Registry.Counter 2; _ } -> ()
  | _ -> Alcotest.fail "owned counter");
  (match Obs.Registry.find snapshot "demo.pcbs" with
  | Some { Obs.Registry.data = Obs.Registry.Gauge g; units = "pcbs"; _ } ->
    Alcotest.(check (float 0.0)) "gauge" 3.5 g
  | _ -> Alcotest.fail "gauge");
  match Obs.Registry.find snapshot "demo.latency" with
  | Some
      { Obs.Registry.data = Obs.Registry.Histogram (summary, buckets); _ } ->
    Alcotest.(check int) "histogram count" 2 summary.Obs.Histogram.count;
    Alcotest.(check bool) "buckets present" true (buckets <> [])
  | _ -> Alcotest.fail "histogram"

let test_registry_reregistration_replaces () =
  let obs = Obs.Registry.create () in
  Obs.Registry.register_counter obs ~name:"x" (fun () -> 1);
  Obs.Registry.register_counter obs ~name:"x" (fun () -> 2);
  Alcotest.(check int) "one metric" 1 (Obs.Registry.size obs);
  match Obs.Registry.find (Obs.Registry.snapshot obs) "x" with
  | Some { Obs.Registry.data = Obs.Registry.Counter 2; _ } -> ()
  | _ -> Alcotest.fail "latest registration wins"

let test_registry_json_round_trip () =
  let obs = Obs.Registry.create () in
  Obs.Registry.register_counter obs ~help:"lookups" ~name:"d.lookups"
    (fun () -> 1234);
  Obs.Registry.register_gauge obs ~units:"pcbs" ~name:"d.pcbs" (fun () -> 50.0);
  let h = Obs.Registry.histogram obs ~units:"pcbs" "d.examined" in
  List.iter (Obs.Histogram.record h) [ 1; 1; 2; 19; 200; 3 ];
  let json = Obs.Registry.to_json ~label:"unit-test" obs in
  match Obs.Registry.of_json json with
  | Error message -> Alcotest.fail message
  | Ok metrics ->
    Alcotest.(check int) "metric count" 3 (List.length metrics);
    (match Obs.Registry.find metrics "d.lookups" with
    | Some { Obs.Registry.data = Obs.Registry.Counter 1234; _ } -> ()
    | _ -> Alcotest.fail "counter round trip");
    (match Obs.Registry.find metrics "d.examined" with
    | Some { Obs.Registry.data = Obs.Registry.Histogram (summary, buckets); _ }
      ->
      Alcotest.(check int) "count" 6 summary.Obs.Histogram.count;
      Alcotest.(check int) "p50" (Obs.Histogram.p50 h) summary.Obs.Histogram.p50;
      Alcotest.(check int) "p99" (Obs.Histogram.p99 h) summary.Obs.Histogram.p99;
      Alcotest.(check int) "max" 200 summary.Obs.Histogram.max;
      Alcotest.(check bool) "buckets preserved" true
        (buckets = Obs.Histogram.buckets h)
    | _ -> Alcotest.fail "histogram round trip");
    match Obs.Registry.find metrics "d.pcbs" with
    | Some { Obs.Registry.data = Obs.Registry.Gauge 50.0; units = "pcbs"; _ } ->
      ()
    | _ -> Alcotest.fail "gauge round trip"

let test_registry_write_json_file () =
  let obs = Obs.Registry.create () in
  ignore (Obs.Registry.counter obs "n");
  let path = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Registry.write_json ~label:"file-test" obs path;
      match Obs.Json.of_file path with
      | Error message -> Alcotest.fail message
      | Ok json ->
        Alcotest.(check (option string)) "schema" (Some "tcpdemux-obs/1")
          (Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string_opt))

(* ------------------------------------------------------------------ *)
(* Lookup_stats integration: observability must not change accounting  *)

let snapshot_fields (s : Demux.Lookup_stats.snapshot) =
  [ s.Demux.Lookup_stats.lookups; s.Demux.Lookup_stats.pcbs_examined;
    s.Demux.Lookup_stats.cache_hits; s.Demux.Lookup_stats.found;
    s.Demux.Lookup_stats.not_found; s.Demux.Lookup_stats.inserts;
    s.Demux.Lookup_stats.removes; s.Demux.Lookup_stats.evictions;
    s.Demux.Lookup_stats.rejections; s.Demux.Lookup_stats.max_examined ]

let drive_spec ?obs ?tracer spec =
  let demux = Demux.Registry.create spec in
  (match obs with
  | Some obs -> Demux.Registry.observe obs demux
  | None -> ());
  (match tracer with
  | Some tracer ->
    Demux.Lookup_stats.set_tracer demux.Demux.Registry.stats tracer
  | None -> ());
  let flow i = Sim.Topology.flow_of_client i in
  for i = 0 to 49 do
    ignore (demux.Demux.Registry.insert (flow i) ())
  done;
  for round = 0 to 5 do
    for i = 0 to 59 do
      ignore (demux.Demux.Registry.lookup (flow ((i * 7) + round mod 60)))
    done
  done;
  for i = 0 to 9 do
    ignore (demux.Demux.Registry.remove (flow i))
  done;
  Demux.Lookup_stats.snapshot demux.Demux.Registry.stats

let test_observed_equals_bare () =
  (* The acceptance property: the same operation sequence produces the
     identical snapshot with observability attached, detached, or
     never mentioned. *)
  List.iter
    (fun spec ->
      let bare = drive_spec spec in
      let obs = Obs.Registry.create () in
      let tracer = Obs.Trace.create ~capacity:1024 () in
      let observed = drive_spec ~obs ~tracer spec in
      let disabled = drive_spec ~tracer:Obs.Trace.disabled spec in
      Alcotest.(check (list int))
        (Demux.Registry.spec_name spec ^ ": observed = bare")
        (snapshot_fields bare) (snapshot_fields observed);
      Alcotest.(check (list int))
        (Demux.Registry.spec_name spec ^ ": disabled tracer = bare")
        (snapshot_fields bare) (snapshot_fields disabled))
    Demux.Registry.
      [ Bsd; Mtf; Sr_cache;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative };
        Guarded
          { spec =
              Sequent
                { chains = 19; hasher = Hashing.Hashers.multiplicative };
            max_chain = 4; max_total = 40 } ]

let test_observe_populates_registry () =
  let obs = Obs.Registry.create () in
  let snapshot = drive_spec ~obs (Demux.Registry.Sequent
      { chains = 19; hasher = Hashing.Hashers.multiplicative }) in
  let metrics = Obs.Registry.snapshot obs in
  (match Obs.Registry.find metrics "demux.sequent-19.lookups" with
  | Some { Obs.Registry.data = Obs.Registry.Counter lookups; _ } ->
    Alcotest.(check int) "counter matches snapshot"
      snapshot.Demux.Lookup_stats.lookups lookups
  | _ -> Alcotest.fail "lookups counter registered");
  match Obs.Registry.find metrics "demux.sequent-19.examined" with
  | Some { Obs.Registry.data = Obs.Registry.Histogram (summary, _); _ } ->
    Alcotest.(check int) "one histogram sample per lookup"
      snapshot.Demux.Lookup_stats.lookups summary.Obs.Histogram.count;
    Alcotest.(check int) "histogram max = snapshot max"
      snapshot.Demux.Lookup_stats.max_examined summary.Obs.Histogram.max
  | _ -> Alcotest.fail "examined histogram registered"

let test_tracer_carries_lookup_events () =
  let tracer = Obs.Trace.create ~capacity:4096 () in
  ignore
    (drive_spec ~tracer
       (Demux.Registry.Sequent
          { chains = 19; hasher = Hashing.Hashers.multiplicative }));
  let events = Obs.Trace.to_list tracer in
  let count kind =
    List.length (List.filter (fun r -> r.Obs.Trace.kind = kind) events)
  in
  Alcotest.(check int) "begin/end pair up" (count Obs.Trace.Lookup_begin)
    (count Obs.Trace.Lookup_end);
  Alcotest.(check bool) "lookups traced" true (count Obs.Trace.Lookup_begin > 0);
  Alcotest.(check int) "inserts traced" 50 (count Obs.Trace.Insert);
  Alcotest.(check int) "removes traced" 10 (count Obs.Trace.Remove)

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_percentile_error_bound; prop_merge_is_partition_invariant;
      prop_json_round_trip ]

let () =
  Alcotest.run "obs"
    [ ( "clock",
        [ Alcotest.test_case "fixed and of_fun" `Quick test_clock_fixed_and_fun;
          Alcotest.test_case "virtual" `Quick test_clock_virtual;
          Alcotest.test_case "wall" `Quick test_clock_wall_moves_forward;
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "histogram",
        [ Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "small values exact" `Quick
            test_histogram_small_values_exact;
          Alcotest.test_case "negative clamps" `Quick
            test_histogram_negative_clamps;
          Alcotest.test_case "clear" `Quick test_histogram_clear;
          Alcotest.test_case "max_int lands in top bucket" `Quick
            test_histogram_max_int_top_bucket;
          Alcotest.test_case "sum saturates at max_int" `Quick
            test_histogram_sum_saturates;
          Alcotest.test_case "validation" `Quick
            test_histogram_sub_bits_validation ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_basic_round_trip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_non_finite_floats_are_null;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors ] );
      ( "trace",
        [ Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "ring wrap" `Quick test_trace_ring_wrap;
          Alcotest.test_case "kind codes" `Quick
            test_trace_kind_codes_round_trip;
          Alcotest.test_case "binary round trip" `Quick
            test_trace_binary_round_trip;
          Alcotest.test_case "bad magic" `Quick
            test_trace_read_rejects_bad_magic ] );
      ( "registry",
        [ Alcotest.test_case "snapshot" `Quick test_registry_snapshot;
          Alcotest.test_case "re-registration" `Quick
            test_registry_reregistration_replaces;
          Alcotest.test_case "json round trip" `Quick
            test_registry_json_round_trip;
          Alcotest.test_case "write file" `Quick test_registry_write_json_file ] );
      ( "lookup-stats",
        [ Alcotest.test_case "observed = bare" `Quick test_observed_equals_bare;
          Alcotest.test_case "observe populates registry" `Quick
            test_observe_populates_registry;
          Alcotest.test_case "tracer carries events" `Quick
            test_tracer_carries_lookup_events ] );
      ("properties", qcheck_cases) ]
