(* The off-heap storage stack (DESIGN.md section 14): Storage backends,
   Packed_table over Bigarray slots, and Epoch.Packed's eager
   reclaim-time free.

   The differential campaign already replays every corpus program and
   fuzz profile against the offheap-table subject (test_check.ml, 18
   subjects); this file owns what the oracle cannot see — the
   Hashtbl-model agreement over both resize policies and degenerate
   hashes, the pending-migration accounting invariant, the
   zero-allocation warm hit, byte accounting, and the copy-on-write
   table's storage lifecycle. *)

let flow i = Sim.Topology.flow_of_client i

let words i =
  let f = flow i in
  (Demux.Flow_key.w0_of_flow f, Demux.Flow_key.w1_of_flow f)

(* ------------------------------------------------------------------ *)
(* Storage: the slot-buffer contract both backends must meet           *)

let backends : (module Demux.Storage.S) list =
  [ (module Demux.Storage.Heap); (module Demux.Storage.Offheap) ]

let test_storage_round_trip () =
  List.iter
    (fun (module St : Demux.Storage.S) ->
      let s = St.create ~capacity:8 in
      let check_int label = Alcotest.(check int) (St.backend ^ ": " ^ label) in
      check_int "capacity" 8 (St.capacity s);
      check_int "mask" 7 (St.mask s);
      check_int "bytes" (8 * St.bytes_per_slot) (St.bytes s);
      (* Fresh slots read empty. *)
      check_int "fresh tag" 0 (St.tag s 3);
      check_int "fresh value" 0 (St.value s 3);
      St.set_tag s 3 77;
      St.set_hash s 3 123456789;
      St.set_words s 3 ~w0:max_int ~w1:1;
      St.set_value s 3 (-42);
      check_int "tag" 77 (St.tag s 3);
      check_int "hash" 123456789 (St.hash s 3);
      check_int "w0" max_int (St.w0 s 3);
      check_int "w1" 1 (St.w1 s 3);
      check_int "value" (-42) (St.value s 3);
      (* A deep copy carries every lane and is independent of the
         original afterwards. *)
      let c = St.copy s in
      check_int "copied tag" 77 (St.tag c 3);
      check_int "copied w0" max_int (St.w0 c 3);
      check_int "copied value" (-42) (St.value c 3);
      St.set_tag s 3 99;
      check_int "copy unaffected by source writes" 77 (St.tag c 3);
      (* reset empties the region without shrinking it. *)
      St.reset s;
      check_int "reset tag" 0 (St.tag s 3);
      check_int "reset capacity" 8 (St.capacity s);
      check_int "copy survives source reset" 77 (St.tag c 3))
    backends

let test_storage_scrub_and_free () =
  List.iter
    (fun (module St : Demux.Storage.S) ->
      let s = St.create ~capacity:8 in
      St.set_tag s 2 9;
      St.set_hash s 2 55;
      St.set_value s 2 7;
      St.scrub s;
      (* Scrubbed slots are poisoned with the dead tag and zeroed
         payload: a stale probe can only see a deterministic miss. *)
      Alcotest.(check int)
        (St.backend ^ ": scrubbed tag") Demux.Storage.dead_tag (St.tag s 2);
      Alcotest.(check int) (St.backend ^ ": scrubbed hash") 0 (St.hash s 2);
      Alcotest.(check int) (St.backend ^ ": scrubbed value") 0 (St.value s 2);
      St.free s;
      (* A freed store degrades to the shared empty sentinel: mask 0
         collapses every probe to slot 0, whose tag never matches. *)
      Alcotest.(check int) (St.backend ^ ": freed mask") 0 (St.mask s);
      Alcotest.(check int) (St.backend ^ ": freed tag") 0 (St.tag s 0);
      (* Double free is a no-op, not a crash. *)
      St.free s)
    backends

let test_storage_validation_and_names () =
  List.iter
    (fun (module St : Demux.Storage.S) ->
      Alcotest.check_raises
        (St.backend ^ ": non-power-of-two capacity")
        (Invalid_argument "Storage.create: capacity must be a positive power \
                           of two") (fun () -> ignore (St.create ~capacity:6)))
    backends;
  let name (module St : Demux.Storage.S) = St.backend in
  Alcotest.(check (option string))
    "by_name heap" (Some "heap")
    (Option.map name (Demux.Storage.by_name "heap"));
  Alcotest.(check (option string))
    "by_name offheap" (Some "offheap")
    (Option.map name (Demux.Storage.by_name "offheap"));
  Alcotest.(check bool)
    "by_name unknown" true
    (Demux.Storage.by_name "mmap" = None)

(* ------------------------------------------------------------------ *)
(* Packed_table (offheap): Hashtbl-model agreement                     *)

type op = P_insert of int | P_remove of int | P_find of int

let arbitrary_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [ (4, map (fun i -> P_insert i) (int_bound 60));
        (2, map (fun i -> P_remove i) (int_bound 60));
        (5, map (fun i -> P_find i) (int_bound 60)) ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | P_insert i -> Printf.sprintf "I%d" i
             | P_remove i -> Printf.sprintf "R%d" i
             | P_find i -> Printf.sprintf "F%d" i)
           ops))
    (list_size (int_range 1 300) op)

(* Same discipline as test_demux's flat-table model property, but over
   a storage backend and an explicit resize policy — and with the
   pending-migration accounting invariant checked after every single
   op, since the draining old region is live during most of a random
   program under the incremental policy. *)
let model_agreement (module M : Demux.Packed_table.S) ?hash ~resize ops =
  let table = M.create ?hash ~initial_capacity:8 ~resize () in
  let model = Hashtbl.create 16 in
  List.for_all
    (fun op ->
      let healthy =
        match op with
        | P_insert i ->
          let w0, w1 = words i in
          M.replace table ~w0 ~w1 i;
          Hashtbl.replace model i i;
          M.find_opt table ~w0 ~w1 = Some i
        | P_remove i ->
          let w0, w1 = words i in
          M.remove table ~w0 ~w1;
          Hashtbl.remove model i;
          M.find_opt table ~w0 ~w1 = None && not (M.mem table ~w0 ~w1)
        | P_find i ->
          let w0, w1 = words i in
          M.find_opt table ~w0 ~w1 = Hashtbl.find_opt model i
          && (match M.find table ~w0 ~w1 with
             | v -> Hashtbl.find_opt model i = Some v
             | exception Not_found -> Hashtbl.find_opt model i = None)
      in
      healthy
      && M.pending_migration table >= 0
      && M.length table = Hashtbl.length model)
    ops
  && M.fold (fun ~w0:_ ~w1:_ _ n -> n + 1) table 0 = Hashtbl.length model

let prop_offheap_model_both_policies =
  QCheck.Test.make ~count:200
    ~name:"offheap packed table agrees with Hashtbl model (both policies)"
    arbitrary_ops
    (fun ops ->
      model_agreement
        (module Demux.Packed_table.Offheap)
        ~resize:Demux.Flat_table.Incremental ops
      && model_agreement
           (module Demux.Packed_table.Offheap)
           ~resize:Demux.Flat_table.Doubling ops)

let prop_offheap_model_degenerate_hash =
  QCheck.Test.make ~count:100
    ~name:"offheap packed table agrees with model under forced collisions"
    arbitrary_ops
    (fun ops ->
      model_agreement
        (module Demux.Packed_table.Offheap)
        ~hash:(fun _ _ -> 0)
        ~resize:Demux.Flat_table.Incremental ops
      && model_agreement
           (module Demux.Packed_table.Offheap)
           ~hash:(fun w0 _ -> w0 land 3)
           ~resize:Demux.Flat_table.Incremental ops)

let run_ops (module M : Demux.Packed_table.S) ~resize ops =
  let table = M.create ~initial_capacity:8 ~resize () in
  List.iter
    (function
      | P_insert i ->
        let w0, w1 = words i in
        M.replace table ~w0 ~w1 i
      | P_remove i ->
        let w0, w1 = words i in
        M.remove table ~w0 ~w1
      | P_find i ->
        let w0, w1 = words i in
        ignore (M.find_opt table ~w0 ~w1))
    ops;
  List.sort compare
    (M.fold (fun ~w0 ~w1 v acc -> (w0, w1, v) :: acc) table [])

let prop_backends_agree =
  QCheck.Test.make ~count:150
    ~name:"heap and offheap backends reach identical contents"
    arbitrary_ops
    (fun ops ->
      let heap_i =
        run_ops (module Demux.Packed_table.Heap)
          ~resize:Demux.Flat_table.Incremental ops
      in
      let off_i =
        run_ops (module Demux.Packed_table.Offheap)
          ~resize:Demux.Flat_table.Incremental ops
      in
      let off_d =
        run_ops (module Demux.Packed_table.Offheap)
          ~resize:Demux.Flat_table.Doubling ops
      in
      heap_i = off_i && off_i = off_d)

(* ------------------------------------------------------------------ *)
(* Packed_table (offheap): resize machinery over Bigarray slots        *)

let test_offheap_grows_across_boundaries () =
  let table =
    Demux.Packed_table.Offheap.create ~initial_capacity:8
      ~resize:Demux.Flat_table.Incremental ()
  in
  for i = 0 to 59 do
    let w0, w1 = words i in
    Demux.Packed_table.Offheap.replace table ~w0 ~w1 i
  done;
  Alcotest.(check int) "length" 60 (Demux.Packed_table.Offheap.length table);
  Alcotest.(check bool) "crossed the 8/15/29 triggers" true
    (Demux.Packed_table.Offheap.resizes table >= 3);
  for i = 0 to 59 do
    let w0, w1 = words i in
    Alcotest.(check int)
      (Printf.sprintf "key %d survives growth" i)
      i
      (Demux.Packed_table.Offheap.find table ~w0 ~w1)
  done;
  (* The drain terminates: enough further mutations bring the old
     region to zero and free its buffers. *)
  let spin = ref 0 in
  while Demux.Packed_table.Offheap.pending_migration table > 0 do
    incr spin;
    if !spin > 1000 then Alcotest.fail "drain did not terminate";
    let w0, w1 = words 0 in
    Demux.Packed_table.Offheap.replace table ~w0 ~w1 0
  done;
  Alcotest.(check int)
    "drained bytes = one region"
    (Demux.Packed_table.Offheap.capacity table
    * Demux.Storage.Offheap.bytes_per_slot)
    (Demux.Packed_table.Offheap.bytes table)

let test_offheap_no_resurrection_across_resize () =
  (* The offheap-churn corpus scenario, asserted directly: remove a
     key resident in the draining old region, re-insert it (lands in
     the new region), remove it again — the second remove must not
     re-kill the dead-marked old slot, and the key must stay gone. *)
  let module M = Demux.Packed_table.Offheap in
  let table =
    M.create ~initial_capacity:8 ~resize:Demux.Flat_table.Incremental ()
  in
  for i = 0 to 7 do
    let w0, w1 = words i in
    M.replace table ~w0 ~w1 i
  done;
  Alcotest.(check bool) "old region draining" true
    (M.pending_migration table > 0);
  let w0, w1 = words 0 in
  M.remove table ~w0 ~w1;
  Alcotest.(check bool) "gone" true (M.find_opt table ~w0 ~w1 = None);
  M.replace table ~w0 ~w1 100;
  Alcotest.(check (option int)) "re-insert visible" (Some 100)
    (M.find_opt table ~w0 ~w1);
  M.remove table ~w0 ~w1;
  Alcotest.(check bool) "gone again, not resurrected" true
    (M.find_opt table ~w0 ~w1 = None && not (M.mem table ~w0 ~w1));
  Alcotest.(check bool) "accounting stayed non-negative" true
    (M.pending_migration table >= 0)

let test_offheap_clear_releases_storage () =
  let module M = Demux.Packed_table.Offheap in
  let table =
    M.create ~initial_capacity:8 ~resize:Demux.Flat_table.Incremental ()
  in
  for i = 0 to 40 do
    let w0, w1 = words i in
    M.replace table ~w0 ~w1 i
  done;
  M.clear table;
  Alcotest.(check int) "empty" 0 (M.length table);
  Alcotest.(check int) "no drain after clear" 0 (M.pending_migration table);
  (* clear frees any draining old region: only the (still-grown)
     current region remains resident. *)
  Alcotest.(check int)
    "bytes = one region"
    (M.capacity table * Demux.Storage.Offheap.bytes_per_slot)
    (M.bytes table);
  let w0, w1 = words 3 in
  Alcotest.(check bool) "cleared keys miss" true (M.find_opt table ~w0 ~w1 = None);
  M.replace table ~w0 ~w1 3;
  Alcotest.(check (option int)) "usable after clear" (Some 3)
    (M.find_opt table ~w0 ~w1)

let measure_minor_words iterations f =
  let before = Gc.minor_words () in
  for _ = 1 to iterations do
    f ()
  done;
  Gc.minor_words () -. before

let test_offheap_find_zero_alloc () =
  let module M = Demux.Packed_table.Offheap in
  let table = M.create () in
  for i = 0 to 255 do
    let w0, w1 = words i in
    M.replace table ~w0 ~w1 i
  done;
  let w0, w1 = words 17 in
  ignore (M.find table ~w0 ~w1);
  let delta =
    measure_minor_words 10_000 (fun () -> ignore (M.find table ~w0 ~w1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "offheap find allocates nothing (minor-words delta %.0f)"
       delta)
    true (delta <= 64.0)

(* ------------------------------------------------------------------ *)
(* Epoch.Packed: copy-on-write over off-heap regions                   *)

let test_epoch_packed_read_write_agreement () =
  let module E = Epoch.Packed.Offheap in
  let t = E.create () in
  E.load t
    (Array.init 64 (fun i ->
         let w0, w1 = words i in
         (w0, w1, i * 3)));
  Alcotest.(check int) "length" 64 (E.length t);
  for i = 0 to 63 do
    let w0, w1 = words i in
    Alcotest.(check int)
      (Printf.sprintf "get %d" i)
      (i * 3)
      (E.get t ~w0 ~w1 ~default:(-1));
    Alcotest.(check (option int))
      (Printf.sprintf "find_opt %d" i)
      (Some (i * 3))
      (E.find_opt t ~w0 ~w1)
  done;
  Alcotest.(check (option int)) "find_flow hit" (Some 51)
    (E.find_flow t (flow 17));
  let w0, w1 = words 1000 in
  Alcotest.(check int) "get miss -> default" (-1)
    (E.get t ~w0 ~w1 ~default:(-1));
  Alcotest.(check bool) "mem miss" false (E.mem t ~w0 ~w1);
  E.remove t ~w0:(fst (words 5)) ~w1:(snd (words 5));
  Alcotest.(check (option int)) "removed" None
    (E.find_opt t ~w0:(fst (words 5)) ~w1:(snd (words 5)));
  Alcotest.(check int) "length after remove" 63 (E.length t)

let test_epoch_packed_eager_free () =
  let module E = Epoch.Packed.Offheap in
  let t = E.create ~initial_capacity:8 () in
  (* Enough inserts to force several copy-publish-retire growths. *)
  for i = 0 to 99 do
    let w0, w1 = words i in
    E.replace t ~w0 ~w1 i
  done;
  (* Every replace copy-publishes and retires the previous region;
     with no pinned readers the writer's inline reclaim frees each one
     immediately, so nothing accumulates. *)
  Alcotest.(check bool) "published per mutation" true (E.publishes t >= 100);
  E.quiesce t;
  Alcotest.(check int) "all retirements reclaimed" 0 (E.pending t);
  (* bytes reports only the live published region after reclaim. *)
  Alcotest.(check int)
    "bytes = published region"
    (E.capacity t * Demux.Storage.Offheap.bytes_per_slot)
    (E.bytes t);
  for i = 0 to 99 do
    let w0, w1 = words i in
    Alcotest.(check int)
      (Printf.sprintf "key %d survives reclaim" i)
      i
      (E.get t ~w0 ~w1 ~default:(-1))
  done

let test_epoch_packed_get_zero_alloc () =
  let module E = Epoch.Packed.Offheap in
  let t = E.create () in
  E.load t
    (Array.init 256 (fun i ->
         let w0, w1 = words i in
         (w0, w1, i)));
  let w0, w1 = words 17 in
  ignore (E.get t ~w0 ~w1 ~default:(-1));
  let delta =
    measure_minor_words 10_000 (fun () ->
        ignore (E.get t ~w0 ~w1 ~default:(-1)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "epoch get allocates nothing (minor-words delta %.0f)"
       delta)
    true (delta <= 64.0)

let test_epoch_packed_backends_agree () =
  let seed_ops (module E : Epoch.Packed.S) =
    let t = E.create () in
    for i = 0 to 49 do
      let w0, w1 = words i in
      E.replace t ~w0 ~w1 i
    done;
    for i = 0 to 9 do
      let w0, w1 = words (i * 5) in
      E.remove t ~w0 ~w1
    done;
    let acc = ref [] in
    E.iter (fun ~w0 ~w1 v -> acc := (w0, w1, v) :: !acc) t;
    List.sort compare !acc
  in
  Alcotest.(check bool) "heap and offheap epoch tables agree" true
    (seed_ops (module Epoch.Packed.Heap)
    = seed_ops (module Epoch.Packed.Offheap))

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_offheap_model_both_policies; prop_offheap_model_degenerate_hash;
      prop_backends_agree ]

let () =
  Alcotest.run "offheap"
    [ ( "storage",
        [ Alcotest.test_case "slot round trip" `Quick test_storage_round_trip;
          Alcotest.test_case "scrub and free" `Quick
            test_storage_scrub_and_free;
          Alcotest.test_case "validation and names" `Quick
            test_storage_validation_and_names ] );
      ( "packed-table",
        [ Alcotest.test_case "grows across boundaries" `Quick
            test_offheap_grows_across_boundaries;
          Alcotest.test_case "no resurrection across resize" `Quick
            test_offheap_no_resurrection_across_resize;
          Alcotest.test_case "clear releases storage" `Quick
            test_offheap_clear_releases_storage;
          Alcotest.test_case "warm find allocates nothing" `Quick
            test_offheap_find_zero_alloc ] );
      ("model", qcheck_cases);
      ( "epoch-packed",
        [ Alcotest.test_case "read/write agreement" `Quick
            test_epoch_packed_read_write_agreement;
          Alcotest.test_case "eager free on reclaim" `Quick
            test_epoch_packed_eager_free;
          Alcotest.test_case "get allocates nothing" `Quick
            test_epoch_packed_get_zero_alloc;
          Alcotest.test_case "backends agree" `Quick
            test_epoch_packed_backends_agree ] ) ]
