(* Tests for the packet substrate: checksums, IPv4 and TCP headers,
   flows, whole segments and pcap traces. *)

let addr = Packet.Ipv4.addr_of_octets

let endpoint a b c d port = Packet.Flow.endpoint (addr a b c d) port

(* ------------------------------------------------------------------ *)
(* Checksum                                                            *)

let test_checksum_rfc1071_example () =
  (* The worked example from RFC 1071 section 3: bytes 00 01 f2 03 f4
     f5 f6 f7 sum to ddf2 before complementing. *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  let sum = Packet.Checksum.ones_complement_sum data ~off:0 ~len:8 in
  let folded = lnot (Packet.Checksum.finish sum) land 0xFFFF in
  Alcotest.(check int) "running sum" 0xDDF2 folded

let test_checksum_odd_length () =
  (* A trailing odd byte is padded with zero on the right. *)
  let data = Bytes.of_string "\xAB" in
  Alcotest.(check int)
    "odd byte padded" (lnot 0xAB00 land 0xFFFF)
    (Packet.Checksum.compute data ~off:0 ~len:1)

let test_checksum_verify_roundtrip () =
  let data = Bytes.of_string "\x45\x00\x00\x1cdata with stuff \x00\x00" in
  let csum = Packet.Checksum.compute data ~off:0 ~len:(Bytes.length data) in
  (* Stuff the checksum into the last two bytes and re-verify. *)
  Bytes.set_uint16_be data (Bytes.length data - 2) csum;
  Alcotest.(check bool)
    "verifies" true
    (Packet.Checksum.verify data ~off:0 ~len:(Bytes.length data))

let test_checksum_bounds () =
  let data = Bytes.create 4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Checksum.ones_complement_sum: region out of range")
    (fun () -> ignore (Packet.Checksum.compute data ~off:2 ~len:4))

let test_checksum_zero_region () =
  let data = Bytes.make 8 '\x00' in
  Alcotest.(check int) "all-zero checksum" 0xFFFF
    (Packet.Checksum.compute data ~off:0 ~len:8)

(* ------------------------------------------------------------------ *)
(* IPv4 addresses                                                      *)

let test_addr_roundtrip () =
  List.iter
    (fun text ->
      match Packet.Ipv4.addr_of_string text with
      | Ok a -> Alcotest.(check string) text text (Packet.Ipv4.addr_to_string a)
      | Error e -> Alcotest.fail e)
    [ "0.0.0.0"; "255.255.255.255"; "10.1.2.3"; "192.168.1.1"; "127.0.0.1" ]

let test_addr_invalid () =
  List.iter
    (fun text ->
      match Packet.Ipv4.addr_of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_addr_octets_invalid () =
  Alcotest.check_raises "octet 256"
    (Invalid_argument "Ipv4.addr_of_octets: octet out of range") (fun () ->
      ignore (addr 256 0 0 1))

let test_addr_compare () =
  let a = addr 10 0 0 1 and b = addr 10 0 0 2 in
  Alcotest.(check bool) "equal self" true (Packet.Ipv4.equal_addr a a);
  Alcotest.(check bool) "not equal" false (Packet.Ipv4.equal_addr a b);
  Alcotest.(check bool) "ordered" true (Packet.Ipv4.compare_addr a b < 0)

(* ------------------------------------------------------------------ *)
(* IPv4 header                                                         *)

let test_ipv4_roundtrip () =
  let header =
    Packet.Ipv4.make ~tos:0x10 ~identification:777 ~ttl:33 ~src:(addr 10 0 0 1)
      ~dst:(addr 192 168 1 1) ~protocol:Packet.Ipv4.Tcp ~payload_length:100 ()
  in
  let buf = Bytes.create (Packet.Ipv4.header_length + 100) in
  Packet.Ipv4.serialize header buf ~off:0;
  match Packet.Ipv4.parse buf ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok (parsed, payload_off) ->
    Alcotest.(check int) "payload offset" 20 payload_off;
    Alcotest.(check int) "tos" 0x10 parsed.Packet.Ipv4.tos;
    Alcotest.(check int) "id" 777 parsed.Packet.Ipv4.identification;
    Alcotest.(check int) "ttl" 33 parsed.Packet.Ipv4.ttl;
    Alcotest.(check int) "payload length" 100 parsed.Packet.Ipv4.payload_length;
    Alcotest.(check bool) "df" true parsed.Packet.Ipv4.dont_fragment;
    Alcotest.(check bool)
      "src" true
      (Packet.Ipv4.equal_addr parsed.Packet.Ipv4.src (addr 10 0 0 1));
    Alcotest.(check bool)
      "dst" true
      (Packet.Ipv4.equal_addr parsed.Packet.Ipv4.dst (addr 192 168 1 1))

let test_ipv4_rejects_corruption () =
  let header =
    Packet.Ipv4.make ~src:(addr 1 2 3 4) ~dst:(addr 5 6 7 8)
      ~protocol:Packet.Ipv4.Tcp ~payload_length:0 ()
  in
  let buf = Bytes.create Packet.Ipv4.header_length in
  Packet.Ipv4.serialize header buf ~off:0;
  Bytes.set_uint8 buf 8 (Bytes.get_uint8 buf 8 lxor 0xFF) (* flip TTL *);
  (match Packet.Ipv4.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted corrupted header"
  | Error e ->
    Alcotest.(check string) "checksum error" "ipv4: header checksum mismatch" e)

let test_ipv4_rejects_truncation () =
  match Packet.Ipv4.parse (Bytes.create 10) ~off:0 with
  | Ok _ -> Alcotest.fail "accepted truncated header"
  | Error e -> Alcotest.(check string) "error" "ipv4: truncated header" e

let test_ipv4_rejects_bad_version () =
  let buf = Bytes.make 20 '\x00' in
  Bytes.set_uint8 buf 0 0x65 (* version 6 *);
  match Packet.Ipv4.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted version 6"
  | Error e -> Alcotest.(check string) "error" "ipv4: bad version 6" e

let test_ipv4_validation () =
  Alcotest.check_raises "ttl range"
    (Invalid_argument "Ipv4.make: ttl out of range") (fun () ->
      ignore
        (Packet.Ipv4.make ~ttl:300 ~src:(addr 1 1 1 1) ~dst:(addr 2 2 2 2)
           ~protocol:Packet.Ipv4.Tcp ~payload_length:0 ()))

let test_protocol_codes () =
  Alcotest.(check int) "tcp" 6 (Packet.Ipv4.protocol_to_int Packet.Ipv4.Tcp);
  Alcotest.(check int) "udp" 17 (Packet.Ipv4.protocol_to_int Packet.Ipv4.Udp);
  Alcotest.(check bool)
    "roundtrip other" true
    (Packet.Ipv4.protocol_of_int 89 = Packet.Ipv4.Other 89)

(* ------------------------------------------------------------------ *)
(* TCP header                                                          *)

let test_tcp_roundtrip_plain () =
  let header =
    Packet.Tcp_header.make ~seq:0x01020304l ~ack_number:0x0A0B0C0Dl
      ~flags:Packet.Tcp_header.flag_psh_ack ~window:4096 ~src_port:1234
      ~dst_port:80 ()
  in
  let buf = Bytes.create 64 in
  let written = Packet.Tcp_header.serialize header buf ~off:0 in
  Alcotest.(check int) "plain header is 20 bytes" 20 written;
  match Packet.Tcp_header.parse buf ~off:0 ~len:written with
  | Error e -> Alcotest.fail e
  | Ok (parsed, payload_off) ->
    Alcotest.(check int) "payload offset" 20 payload_off;
    Alcotest.(check int) "src port" 1234 parsed.Packet.Tcp_header.src_port;
    Alcotest.(check int) "dst port" 80 parsed.Packet.Tcp_header.dst_port;
    Alcotest.(check int32) "seq" 0x01020304l parsed.Packet.Tcp_header.seq;
    Alcotest.(check int32) "ack" 0x0A0B0C0Dl parsed.Packet.Tcp_header.ack_number;
    Alcotest.(check bool) "psh" true parsed.Packet.Tcp_header.flags.Packet.Tcp_header.psh;
    Alcotest.(check bool) "ack flag" true parsed.Packet.Tcp_header.flags.Packet.Tcp_header.ack;
    Alcotest.(check bool) "syn" false parsed.Packet.Tcp_header.flags.Packet.Tcp_header.syn;
    Alcotest.(check int) "window" 4096 parsed.Packet.Tcp_header.window

let test_tcp_roundtrip_options () =
  let options =
    Packet.Tcp_header.
      [ Mss 1460; Nop; Window_scale 7; Sack_permitted;
        Timestamps { value = 123456l; echo = 654321l } ]
  in
  let header =
    Packet.Tcp_header.make ~flags:Packet.Tcp_header.flag_syn ~options
      ~src_port:5555 ~dst_port:8888 ()
  in
  let buf = Bytes.create 64 in
  let written = Packet.Tcp_header.serialize header buf ~off:0 in
  Alcotest.(check int)
    "header length = 20 + padded options"
    (Packet.Tcp_header.header_length header)
    written;
  Alcotest.(check int) "4-byte aligned" 0 (written mod 4);
  match Packet.Tcp_header.parse buf ~off:0 ~len:written with
  | Error e -> Alcotest.fail e
  | Ok (parsed, _) ->
    let opts = parsed.Packet.Tcp_header.options in
    Alcotest.(check int) "option count" 5 (List.length opts);
    (match opts with
    | [ Packet.Tcp_header.Mss 1460; Packet.Tcp_header.Nop;
        Packet.Tcp_header.Window_scale 7; Packet.Tcp_header.Sack_permitted;
        Packet.Tcp_header.Timestamps { value = 123456l; echo = 654321l } ] ->
      ()
    | _ -> Alcotest.fail "options did not round-trip in order")

let test_tcp_unknown_option () =
  let header =
    Packet.Tcp_header.make
      ~options:[ Packet.Tcp_header.Unknown { kind = 42; payload = "xy" } ]
      ~src_port:1 ~dst_port:2 ()
  in
  let buf = Bytes.create 64 in
  let written = Packet.Tcp_header.serialize header buf ~off:0 in
  match Packet.Tcp_header.parse buf ~off:0 ~len:written with
  | Error e -> Alcotest.fail e
  | Ok (parsed, _) -> (
    match parsed.Packet.Tcp_header.options with
    | [ Packet.Tcp_header.Unknown { kind = 42; payload = "xy" } ] -> ()
    | _ -> Alcotest.fail "unknown option mangled")

let test_tcp_checksum_with_pseudo_header () =
  let ip =
    Packet.Ipv4.make ~src:(addr 10 0 0 1) ~dst:(addr 10 0 0 2)
      ~protocol:Packet.Ipv4.Tcp ~payload_length:25 ()
  in
  let pseudo_sum = Packet.Ipv4.pseudo_header_sum ip in
  let header = Packet.Tcp_header.make ~src_port:1 ~dst_port:2 () in
  let buf = Bytes.create 64 in
  let written =
    Packet.Tcp_header.serialize header ~pseudo_sum ~payload:"hello" buf ~off:0
  in
  Alcotest.(check int) "20 + 5" 25 written;
  (match Packet.Tcp_header.parse ~pseudo_sum ~len:written buf ~off:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Flip a payload byte: checksum must catch it. *)
  Bytes.set_uint8 buf 22 (Bytes.get_uint8 buf 22 lxor 1);
  match Packet.Tcp_header.parse ~pseudo_sum ~len:written buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted corrupt payload"
  | Error e -> Alcotest.(check string) "checksum error" "tcp: checksum mismatch" e

let test_tcp_rejects_bad_offset () =
  let buf = Bytes.make 20 '\x00' in
  Bytes.set_uint8 buf 12 (3 lsl 4) (* data offset 12 bytes < 20 *);
  (match Packet.Tcp_header.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted offset 3"
  | Error e -> Alcotest.(check string) "error" "tcp: data offset below 20" e);
  Bytes.set_uint8 buf 12 (15 lsl 4) (* 60 bytes > segment *);
  match Packet.Tcp_header.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted oversized offset"
  | Error e -> Alcotest.(check string) "error" "tcp: data offset beyond segment" e

let test_tcp_validation () =
  Alcotest.check_raises "port range"
    (Invalid_argument "Tcp_header.make: src_port out of range") (fun () ->
      ignore (Packet.Tcp_header.make ~src_port:70000 ~dst_port:1 ()));
  let too_many =
    List.init 11 (fun _ -> Packet.Tcp_header.Mss 1460)
  in
  Alcotest.check_raises "options too long"
    (Invalid_argument "Tcp_header.make: options exceed 40 bytes") (fun () ->
      ignore (Packet.Tcp_header.make ~options:too_many ~src_port:1 ~dst_port:2 ()))

(* ------------------------------------------------------------------ *)
(* Flow                                                                *)

let test_flow_of_headers () =
  let ip =
    Packet.Ipv4.make ~src:(addr 10 0 0 9) ~dst:(addr 192 168 1 1)
      ~protocol:Packet.Ipv4.Tcp ~payload_length:20 ()
  in
  let tcp = Packet.Tcp_header.make ~src_port:4000 ~dst_port:80 () in
  let flow = Packet.Flow.of_headers ip tcp in
  (* Receiver's view: local = destination of the packet. *)
  Alcotest.(check int) "local port" 80 flow.Packet.Flow.local.Packet.Flow.port;
  Alcotest.(check int) "remote port" 4000 flow.Packet.Flow.remote.Packet.Flow.port;
  Alcotest.(check bool)
    "local addr" true
    (Packet.Ipv4.equal_addr flow.Packet.Flow.local.Packet.Flow.addr
       (addr 192 168 1 1))

let test_flow_reverse_involution () =
  let flow =
    Packet.Flow.v ~local:(endpoint 1 2 3 4 80) ~remote:(endpoint 5 6 7 8 4000)
  in
  Alcotest.(check bool)
    "reverse . reverse = id" true
    (Packet.Flow.equal flow (Packet.Flow.reverse (Packet.Flow.reverse flow)));
  Alcotest.(check bool)
    "reverse differs" false
    (Packet.Flow.equal flow (Packet.Flow.reverse flow))

let test_flow_key_bytes_layout () =
  let flow =
    Packet.Flow.v ~local:(endpoint 1 2 3 4 0x1234)
      ~remote:(endpoint 5 6 7 8 0x5678)
  in
  let key = Packet.Flow.to_key_bytes flow in
  Alcotest.(check int) "96 bits" 12 (Bytes.length key);
  Alcotest.(check string) "layout"
    "\x01\x02\x03\x04\x05\x06\x07\x08\x12\x34\x56\x78"
    (Bytes.to_string key)

let test_flow_compare_total_order () =
  let flows =
    [ Packet.Flow.v ~local:(endpoint 1 1 1 1 1) ~remote:(endpoint 2 2 2 2 2);
      Packet.Flow.v ~local:(endpoint 1 1 1 1 1) ~remote:(endpoint 2 2 2 2 3);
      Packet.Flow.v ~local:(endpoint 1 1 1 1 2) ~remote:(endpoint 2 2 2 2 2) ]
  in
  List.iter
    (fun f ->
      Alcotest.(check int) "compare self" 0 (Packet.Flow.compare f f))
    flows;
  let sorted = List.sort Packet.Flow.compare flows in
  Alcotest.(check int) "stable size" 3 (List.length sorted)

let test_endpoint_validation () =
  Alcotest.check_raises "port out of range"
    (Invalid_argument "Flow.endpoint: bad port") (fun () ->
      ignore (Packet.Flow.endpoint (addr 1 2 3 4) 65536))

(* ------------------------------------------------------------------ *)
(* Segment                                                             *)

let test_segment_roundtrip () =
  let segment =
    Packet.Segment.make ~seq:42l ~ack_number:77l
      ~flags:Packet.Tcp_header.flag_psh_ack ~payload:"SELECT * FROM accounts"
      ~src:(endpoint 10 0 0 1 4000) ~dst:(endpoint 192 168 1 1 8888) ()
  in
  let wire = Packet.Segment.to_bytes segment in
  Alcotest.(check int) "wire length" (Packet.Segment.length segment)
    (Bytes.length wire);
  match Packet.Segment.parse wire ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check string) "payload" "SELECT * FROM accounts"
      parsed.Packet.Segment.payload;
    Alcotest.(check int32) "seq" 42l parsed.Packet.Segment.tcp.Packet.Tcp_header.seq;
    Alcotest.(check bool)
      "flow" true
      (Packet.Flow.equal (Packet.Segment.flow segment)
         (Packet.Segment.flow parsed))

let test_segment_detects_any_corruption () =
  let segment =
    Packet.Segment.make ~payload:"payload under test"
      ~src:(endpoint 10 0 0 1 4000) ~dst:(endpoint 192 168 1 1 8888) ()
  in
  let wire = Packet.Segment.to_bytes segment in
  let rejected = ref 0 in
  for i = 0 to Bytes.length wire - 1 do
    let copy = Bytes.copy wire in
    Bytes.set_uint8 copy i (Bytes.get_uint8 copy i lxor 0x01);
    match Packet.Segment.parse copy ~off:0 with
    | Error _ -> incr rejected
    | Ok reparsed ->
      (* A flip in the checksum-covered region must not parse equal. *)
      if
        reparsed.Packet.Segment.payload = segment.Packet.Segment.payload
        && Packet.Flow.equal
             (Packet.Segment.flow reparsed)
             (Packet.Segment.flow segment)
      then Alcotest.failf "undetected corruption at byte %d" i
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most flips rejected (%d)" !rejected)
    true
    (!rejected >= Bytes.length wire - 2)

let test_segment_rejects_fragment () =
  let segment =
    Packet.Segment.make ~src:(endpoint 1 1 1 1 1) ~dst:(endpoint 2 2 2 2 2) ()
  in
  let wire = Packet.Segment.to_bytes segment in
  (* Set MF bit and fix the IP checksum by recomputing it. *)
  let flags = Bytes.get_uint16_be wire 6 in
  Bytes.set_uint16_be wire 6 (flags lor 0x2000);
  Bytes.set_uint16_be wire 10 0;
  let csum = Packet.Checksum.compute wire ~off:0 ~len:20 in
  Bytes.set_uint16_be wire 10 csum;
  match Packet.Segment.parse wire ~off:0 with
  | Ok _ -> Alcotest.fail "accepted fragment"
  | Error e -> Alcotest.(check string) "error" "segment: fragmented datagram" e

let test_segment_skip_checksum () =
  let segment =
    Packet.Segment.make ~payload:"x" ~src:(endpoint 1 1 1 1 1)
      ~dst:(endpoint 2 2 2 2 2) ()
  in
  let wire = Packet.Segment.to_bytes segment in
  (* Corrupt the TCP checksum itself; parse with verification off. *)
  Bytes.set_uint16_be wire (20 + 16) 0xDEAD;
  match Packet.Segment.parse ~verify_checksum:false wire ~off:0 with
  | Ok parsed ->
    Alcotest.(check string) "payload still there" "x"
      parsed.Packet.Segment.payload
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* UDP                                                                 *)

let udp_pseudo_sum payload_length =
  let ip =
    Packet.Ipv4.make ~src:(addr 10 0 0 1) ~dst:(addr 10 0 0 2)
      ~protocol:Packet.Ipv4.Udp
      ~payload_length:(Packet.Udp_header.header_length + payload_length) ()
  in
  Packet.Ipv4.pseudo_header_sum ip

let test_udp_roundtrip () =
  let header =
    Packet.Udp_header.make ~src_port:5353 ~dst_port:53 ~payload_length:9
  in
  let pseudo_sum = udp_pseudo_sum 9 in
  let buf = Bytes.create 32 in
  let written =
    Packet.Udp_header.serialize header ~pseudo_sum ~payload:"dns query" buf
      ~off:0
  in
  Alcotest.(check int) "8 + 9" 17 written;
  match Packet.Udp_header.parse ~pseudo_sum buf ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok (parsed, payload_off) ->
    Alcotest.(check int) "src" 5353 parsed.Packet.Udp_header.src_port;
    Alcotest.(check int) "dst" 53 parsed.Packet.Udp_header.dst_port;
    Alcotest.(check int) "payload offset" 8 payload_off;
    Alcotest.(check string) "payload" "dns query"
      (Bytes.sub_string buf payload_off parsed.Packet.Udp_header.payload_length)

let test_udp_checksum_detects_corruption () =
  let header = Packet.Udp_header.make ~src_port:1 ~dst_port:2 ~payload_length:4 in
  let pseudo_sum = udp_pseudo_sum 4 in
  let buf = Bytes.create 16 in
  ignore (Packet.Udp_header.serialize header ~pseudo_sum ~payload:"data" buf ~off:0);
  Bytes.set_uint8 buf 9 (Bytes.get_uint8 buf 9 lxor 0x10);
  match Packet.Udp_header.parse ~pseudo_sum buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted corrupt payload"
  | Error e -> Alcotest.(check string) "error" "udp: checksum mismatch" e

let test_udp_optional_checksum () =
  (* Serialized without pseudo_sum -> wire checksum 0 -> parser must
     accept it even when verifying. *)
  let header = Packet.Udp_header.make ~src_port:1 ~dst_port:2 ~payload_length:2 in
  let buf = Bytes.create 16 in
  ignore (Packet.Udp_header.serialize header ~payload:"ok" buf ~off:0);
  Alcotest.(check int) "wire checksum zero" 0 (Bytes.get_uint16_be buf 6);
  match Packet.Udp_header.parse ~pseudo_sum:(udp_pseudo_sum 2) buf ~off:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_udp_flow_key () =
  let ip =
    Packet.Ipv4.make ~src:(addr 10 0 0 9) ~dst:(addr 192 168 1 1)
      ~protocol:Packet.Ipv4.Udp ~payload_length:8 ()
  in
  let header = Packet.Udp_header.make ~src_port:4000 ~dst_port:53 ~payload_length:0 in
  let flow = Packet.Udp_header.flow ip header in
  Alcotest.(check int) "local port" 53 flow.Packet.Flow.local.Packet.Flow.port;
  Alcotest.(check int) "remote port" 4000 flow.Packet.Flow.remote.Packet.Flow.port

let test_udp_validation () =
  Alcotest.check_raises "payload mismatch"
    (Invalid_argument "Udp_header.serialize: payload length mismatch")
    (fun () ->
      let header = Packet.Udp_header.make ~src_port:1 ~dst_port:2 ~payload_length:3 in
      ignore (Packet.Udp_header.serialize header ~payload:"xx" (Bytes.create 16) ~off:0));
  (match Packet.Udp_header.parse (Bytes.create 4) ~off:0 with
  | Ok _ -> Alcotest.fail "accepted truncation"
  | Error e -> Alcotest.(check string) "truncated" "udp: truncated header" e);
  (* Length field smaller than the header itself. *)
  let buf = Bytes.make 8 '\x00' in
  Bytes.set_uint16_be buf 4 5;
  match Packet.Udp_header.parse buf ~off:0 with
  | Ok _ -> Alcotest.fail "accepted bad length"
  | Error e -> Alcotest.(check string) "bad length" "udp: length below header size" e

(* A UDP flow drives the demux algorithms exactly like a TCP one. *)
let test_udp_demultiplexes () =
  let demux =
    Demux.Registry.create
      (Demux.Registry.Sequent
         { chains = 19; hasher = Hashing.Hashers.multiplicative })
  in
  let ip =
    Packet.Ipv4.make ~src:(addr 10 0 0 9) ~dst:(addr 192 168 1 1)
      ~protocol:Packet.Ipv4.Udp ~payload_length:8 ()
  in
  let header = Packet.Udp_header.make ~src_port:4000 ~dst_port:53 ~payload_length:0 in
  let flow = Packet.Udp_header.flow ip header in
  ignore (demux.Demux.Registry.insert flow ());
  match demux.Demux.Registry.lookup flow with
  | Some _ -> ()
  | None -> Alcotest.fail "udp flow not found"

(* ------------------------------------------------------------------ *)
(* Fragmentation and reassembly                                        *)

let datagram_header payload =
  Packet.Ipv4.make ~identification:4242 ~dont_fragment:false
    ~src:(addr 10 0 0 1) ~dst:(addr 192 168 1 1) ~protocol:Packet.Ipv4.Tcp
    ~payload_length:(String.length payload) ()

let reassemble_all ?(now = 0.0) reassembler pieces =
  List.fold_left
    (fun acc (header, piece) ->
      match Packet.Reassembly.push reassembler ~now header piece with
      | Ok (Packet.Reassembly.Complete (h, p)) -> Some (h, p)
      | Ok (Packet.Reassembly.Pending | Packet.Reassembly.Duplicate) -> acc
      | Error e -> Alcotest.fail e)
    None pieces

let test_fragment_shapes () =
  let payload = String.init 2000 (fun i -> Char.chr (i mod 256)) in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:576
  in
  Alcotest.(check int) "four pieces" 4 (List.length pieces);
  List.iteri
    (fun i (h, piece) ->
      let last = i = List.length pieces - 1 in
      Alcotest.(check bool) "MF" (not last) h.Packet.Ipv4.more_fragments;
      if not last then
        Alcotest.(check int) "multiple of 8" 0 (String.length piece mod 8);
      Alcotest.(check bool) "fits mtu" true
        (Packet.Ipv4.header_length + String.length piece <= 576))
    pieces;
  (* Offsets and pieces cover the payload exactly. *)
  let rebuilt = Buffer.create 2000 in
  List.iter (fun (_, piece) -> Buffer.add_string rebuilt piece) pieces;
  Alcotest.(check string) "cover" payload (Buffer.contents rebuilt)

let test_fragment_df_raises () =
  let payload = String.make 2000 'x' in
  let header =
    Packet.Ipv4.make ~dont_fragment:true ~src:(addr 1 1 1 1) ~dst:(addr 2 2 2 2)
      ~protocol:Packet.Ipv4.Tcp ~payload_length:2000 ()
  in
  Alcotest.check_raises "DF"
    (Invalid_argument "Reassembly.fragment: DF set and datagram exceeds mtu")
    (fun () -> ignore (Packet.Reassembly.fragment header ~payload ~mtu:576))

let test_fragment_small_passthrough () =
  let payload = "tiny" in
  match Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:576 with
  | [ (h, p) ] ->
    Alcotest.(check string) "unchanged" payload p;
    Alcotest.(check bool) "no MF" false h.Packet.Ipv4.more_fragments
  | _ -> Alcotest.fail "should not fragment"

let test_reassemble_in_order () =
  let payload = String.init 5000 (fun i -> Char.chr ((i * 7) mod 256)) in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:1500
  in
  let r = Packet.Reassembly.create () in
  (match reassemble_all r pieces with
  | Some (h, p) ->
    Alcotest.(check string) "payload restored" payload p;
    Alcotest.(check int) "length" 5000 h.Packet.Ipv4.payload_length;
    Alcotest.(check bool) "MF cleared" false h.Packet.Ipv4.more_fragments
  | None -> Alcotest.fail "incomplete");
  Alcotest.(check int) "nothing pending" 0 (Packet.Reassembly.pending r)

let test_reassemble_out_of_order () =
  let payload = String.init 3000 (fun i -> Char.chr ((i * 13) mod 256)) in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:576
  in
  let shuffled =
    let arr = Array.of_list pieces in
    let rng = Numerics.Rng.create ~seed:5 in
    Numerics.Rng.shuffle rng arr;
    Array.to_list arr
  in
  let r = Packet.Reassembly.create () in
  match reassemble_all r shuffled with
  | Some (_, p) -> Alcotest.(check string) "restored from shuffle" payload p
  | None -> Alcotest.fail "incomplete"

let test_reassemble_missing_fragment_pends () =
  let payload = String.make 4000 'q' in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:1500
  in
  let r = Packet.Reassembly.create () in
  (* Drop the middle piece. *)
  let holey = [ List.nth pieces 0; List.nth pieces 2 ] in
  (match reassemble_all r holey with
  | None -> ()
  | Some _ -> Alcotest.fail "completed with a hole");
  Alcotest.(check int) "one pending" 1 (Packet.Reassembly.pending r);
  (* Delivering the missing piece completes it. *)
  match reassemble_all r [ List.nth pieces 1 ] with
  | Some (_, p) -> Alcotest.(check string) "completed" payload p
  | None -> Alcotest.fail "still incomplete"

let test_reassemble_duplicate_and_overlap () =
  let payload = String.init 2900 (fun i -> Char.chr (i mod 251)) in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:1500
  in
  let r = Packet.Reassembly.create () in
  (* Deliver the first fragment twice. *)
  let first = List.hd pieces in
  (match Packet.Reassembly.push r ~now:0.0 (fst first) (snd first) with
  | Ok Packet.Reassembly.Pending -> ()
  | _ -> Alcotest.fail "expected pending");
  (match Packet.Reassembly.push r ~now:0.0 (fst first) (snd first) with
  | Ok Packet.Reassembly.Duplicate -> ()
  | _ -> Alcotest.fail "expected duplicate");
  match reassemble_all r (List.tl pieces) with
  | Some (_, p) -> Alcotest.(check string) "unaffected" payload p
  | None -> Alcotest.fail "incomplete"

let test_reassembly_expiry () =
  let payload = String.make 4000 'z' in
  let pieces =
    Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu:1500
  in
  let r = Packet.Reassembly.create ~timeout:10.0 () in
  (match Packet.Reassembly.push r ~now:0.0 (fst (List.hd pieces))
           (snd (List.hd pieces))
   with
  | Ok Packet.Reassembly.Pending -> ()
  | _ -> Alcotest.fail "expected pending");
  Alcotest.(check int) "not expired yet" 0 (Packet.Reassembly.expire r ~now:5.0);
  Alcotest.(check int) "expired" 1 (Packet.Reassembly.expire r ~now:20.0);
  Alcotest.(check int) "empty" 0 (Packet.Reassembly.pending r)

let test_reassembly_rejects_malformed () =
  let r = Packet.Reassembly.create () in
  let header = datagram_header "0123456789" in
  (* Length mismatch. *)
  (match Packet.Reassembly.push r ~now:0.0 header "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted length mismatch");
  (* Non-final fragment not a multiple of 8. *)
  let bad = { header with Packet.Ipv4.more_fragments = true } in
  match Packet.Reassembly.push r ~now:0.0 bad "0123456789" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted ragged non-final fragment"

let prop_fragment_reassemble_roundtrip =
  QCheck.Test.make ~count:100 ~name:"fragment -> shuffle -> reassemble = id"
    QCheck.(
      pair
        (string_of_size (Gen.int_range 1 8000))
        (pair (int_range 68 1500) small_int))
    (fun (payload, (mtu, seed)) ->
      let pieces =
        Packet.Reassembly.fragment (datagram_header payload) ~payload ~mtu
      in
      let arr = Array.of_list pieces in
      let rng = Numerics.Rng.create ~seed in
      Numerics.Rng.shuffle rng arr;
      let r = Packet.Reassembly.create () in
      let final =
        Array.fold_left
          (fun acc (h, piece) ->
            match Packet.Reassembly.push r ~now:0.0 h piece with
            | Ok (Packet.Reassembly.Complete (_, p)) -> Some p
            | Ok _ -> acc
            | Error _ -> Some "ERROR")
          None arr
      in
      final = Some payload)

(* ------------------------------------------------------------------ *)
(* Pcap                                                                *)

let with_temp_file f =
  let path = Filename.temp_file "tcpdemux_test" ".pcap" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_pcap_roundtrip () =
  with_temp_file (fun path ->
      let segments =
        List.init 5 (fun i ->
            Packet.Segment.make
              ~payload:(Printf.sprintf "packet %d" i)
              ~src:(endpoint 10 0 0 (i + 1) (1000 + i))
              ~dst:(endpoint 192 168 1 1 8888) ())
      in
      let oc = open_out_bin path in
      let writer = Packet.Pcap.create_writer oc in
      List.iteri
        (fun i s ->
          Packet.Pcap.write_packet writer
            ~time:(1000.0 +. (float_of_int i *. 0.5))
            (Packet.Segment.to_bytes s))
        segments;
      close_out oc;
      Alcotest.(check int) "count" 5 (Packet.Pcap.packet_count writer);
      let ic = open_in_bin path in
      let records =
        match Packet.Pcap.read_all ic with
        | Ok records -> records
        | Error e -> Alcotest.fail e
      in
      close_in ic;
      Alcotest.(check int) "read back" 5 (List.length records);
      List.iteri
        (fun i record ->
          Alcotest.(check (float 1e-5))
            "timestamp"
            (1000.0 +. (float_of_int i *. 0.5))
            record.Packet.Pcap.time;
          match Packet.Segment.parse record.Packet.Pcap.data ~off:0 with
          | Ok parsed ->
            Alcotest.(check string)
              "payload"
              (Printf.sprintf "packet %d" i)
              parsed.Packet.Segment.payload
          | Error e -> Alcotest.fail e)
        records)

let test_pcap_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "this is not a pcap file at all.........";
      close_out oc;
      let ic = open_in_bin path in
      (match Packet.Pcap.read_all ic with
      | Ok _ -> Alcotest.fail "accepted garbage"
      | Error e -> Alcotest.(check string) "error" "pcap: bad magic" e);
      close_in ic)

(* Corrupted-fixture tests: write a valid capture, damage it at a
   known byte, and check [read_all] reports the damage (with its
   offset) instead of raising. *)

let valid_capture_bytes ?(packets = 2) () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let writer = Packet.Pcap.create_writer oc in
      for i = 1 to packets do
        Packet.Pcap.write_packet writer ~time:(float_of_int i)
          (Packet.Segment.to_bytes
             (Packet.Segment.make ~payload:"payload"
                ~src:(endpoint 10 0 0 i (1000 + i))
                ~dst:(endpoint 192 168 1 1 8888) ()))
      done;
      close_out oc;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      close_in ic;
      buf)

let read_all_of_bytes buf =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_bytes oc buf;
      close_out oc;
      let ic = open_in_bin path in
      let result = Packet.Pcap.read_all ic in
      close_in ic;
      result)

let expect_error ~substrings buf =
  match read_all_of_bytes buf with
  | Ok records ->
    Alcotest.failf "damaged capture read back as %d records"
      (List.length records)
  | Error message ->
    List.iter
      (fun affix ->
        let nh = String.length message and nn = String.length affix in
        let rec at i =
          i + nn <= nh && (String.sub message i nn = affix || at (i + 1))
        in
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" message affix)
          true (at 0))
      substrings

let test_pcap_truncated_global_header () =
  let buf = valid_capture_bytes () in
  expect_error
    ~substrings:[ "truncated global header"; "10 of 24" ]
    (Bytes.sub buf 0 10);
  expect_error ~substrings:[ "truncated global header"; "0 of 24" ]
    Bytes.empty

let test_pcap_truncated_record_header () =
  let buf = valid_capture_bytes ~packets:1 () in
  (* Cut inside the (only) record header: 24-byte global header plus 7
     of the 16 record-header bytes. *)
  expect_error
    ~substrings:[ "truncated record header at byte 24"; "7 of 16" ]
    (Bytes.sub buf 0 31)

let test_pcap_absurd_record_length () =
  let buf = valid_capture_bytes ~packets:1 () in
  (* incl_len lives at record offset 8 (byte 32 of the file),
     little-endian.  Claim 2 GiB. *)
  let damaged = Bytes.copy buf in
  Bytes.set_uint8 damaged 32 0xFF;
  Bytes.set_uint8 damaged 33 0xFF;
  Bytes.set_uint8 damaged 34 0xFF;
  Bytes.set_uint8 damaged 35 0x7F;
  expect_error ~substrings:[ "absurd record length"; "at byte 24" ] damaged;
  (* A negative incl_len is equally absurd. *)
  Bytes.set_uint8 damaged 35 0xFF;
  expect_error ~substrings:[ "absurd record length"; "at byte 24" ] damaged

let test_pcap_truncated_record_body () =
  let buf = valid_capture_bytes ~packets:2 () in
  (* Keep record 1 intact, cut record 2's body short by 5 bytes.  The
     error names the body's own offset. *)
  let record_bytes = (Bytes.length buf - 24) / 2 in
  let second_body = 24 + record_bytes + 16 in
  expect_error
    ~substrings:
      [ Printf.sprintf "truncated record body at byte %d" second_body ]
    (Bytes.sub buf 0 (Bytes.length buf - 5))

let test_pcap_empty_capture_is_ok () =
  let buf = valid_capture_bytes ~packets:1 () in
  (* Just the global header: zero records is a fine capture. *)
  match read_all_of_bytes (Bytes.sub buf 0 24) with
  | Ok [] -> ()
  | Ok records -> Alcotest.failf "read %d records" (List.length records)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Checksum coverage of the whole datagram                             *)

(* Every byte of a serialized segment is covered by a checksum: the IP
   header by the header checksum, everything past it by the TCP
   checksum (whose pseudo-header also re-covers the addresses).  A
   one's-complement sum changes whenever a single bit of a summand
   changes, so {e every} single-bit flip must make [parse] fail —
   there is no uncovered byte for an attacker (or a flaky NIC) to
   twiddle undetected.  Exhaustive over all bits of the datagram. *)
let test_every_single_bit_flip_rejected () =
  let wire =
    Packet.Segment.to_bytes
      (Packet.Segment.make ~payload:"covered by the TCP checksum"
         ~seq:7l ~flags:Packet.Tcp_header.flag_psh_ack
         ~src:(endpoint 10 0 0 1 1234)
         ~dst:(endpoint 192 168 1 1 8888) ())
  in
  (match Packet.Segment.parse wire ~off:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine segment rejected: %s" e);
  let flips = ref 0 in
  for byte = 0 to Bytes.length wire - 1 do
    for bit = 0 to 7 do
      let flip () =
        Bytes.set_uint8 wire byte (Bytes.get_uint8 wire byte lxor (1 lsl bit))
      in
      flip ();
      (match Packet.Segment.parse wire ~off:0 with
      | Ok _ -> Alcotest.failf "accepted flip of byte %d bit %d" byte bit
      | Error _ -> incr flips);
      flip ()
    done
  done;
  Alcotest.(check int) "every flip tried" (8 * Bytes.length wire) !flips;
  (* The buffer was restored after each flip: it still parses. *)
  match Packet.Segment.parse wire ~off:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restoration failed: %s" e

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)

let arbitrary_endpoint =
  QCheck.Gen.(
    map2
      (fun ip port ->
        Packet.Flow.endpoint
          (Packet.Ipv4.addr_of_int32 (Int32.of_int ip))
          port)
      (int_bound 0xFFFFFF) (int_bound 0xFFFF))

let arbitrary_segment =
  let gen =
    QCheck.Gen.(
      map2
        (fun (src, dst) (payload, (seq, window)) ->
          Packet.Segment.make
            ~seq:(Int32.of_int seq)
            ~flags:Packet.Tcp_header.flag_psh_ack ~window ~payload ~src ~dst ())
        (pair arbitrary_endpoint arbitrary_endpoint)
        (pair (string_size (int_bound 100)) (pair nat (int_bound 0xFFFF))))
  in
  QCheck.make gen

let prop_segment_roundtrip =
  QCheck.Test.make ~count:300 ~name:"segment serialize/parse round-trips"
    arbitrary_segment (fun segment ->
      match Packet.Segment.parse (Packet.Segment.to_bytes segment) ~off:0 with
      | Error _ -> false
      | Ok parsed ->
        parsed.Packet.Segment.payload = segment.Packet.Segment.payload
        && Packet.Flow.equal
             (Packet.Segment.flow parsed)
             (Packet.Segment.flow segment)
        && Int32.equal parsed.Packet.Segment.tcp.Packet.Tcp_header.seq
             segment.Packet.Segment.tcp.Packet.Tcp_header.seq)

let prop_flow_key_injective_on_reverse =
  QCheck.Test.make ~count:300 ~name:"flow key distinguishes flow from reverse"
    (QCheck.make QCheck.Gen.(pair arbitrary_endpoint arbitrary_endpoint))
    (fun (a, b) ->
      let flow = Packet.Flow.v ~local:a ~remote:b in
      let same_endpoints =
        Packet.Ipv4.equal_addr a.Packet.Flow.addr b.Packet.Flow.addr
        && a.Packet.Flow.port = b.Packet.Flow.port
      in
      same_endpoints
      || Bytes.compare
           (Packet.Flow.to_key_bytes flow)
           (Packet.Flow.to_key_bytes (Packet.Flow.reverse flow))
         <> 0)

(* Fuzzing: parsers must totalise — any byte string yields Ok or Error,
   never an exception. *)

let arbitrary_bytes =
  QCheck.map Bytes.of_string QCheck.(string_of_size (QCheck.Gen.int_range 0 200))

let no_exception f =
  match f () with
  | (_ : (_, string) result) -> true
  | exception _ -> false

let prop_ipv4_parse_total =
  QCheck.Test.make ~count:1000 ~name:"Ipv4.parse never raises on garbage"
    arbitrary_bytes (fun bytes ->
      no_exception (fun () -> Packet.Ipv4.parse bytes ~off:0))

let prop_tcp_parse_total =
  QCheck.Test.make ~count:1000 ~name:"Tcp_header.parse never raises on garbage"
    arbitrary_bytes (fun bytes ->
      no_exception (fun () -> Packet.Tcp_header.parse bytes ~off:0))

let prop_udp_parse_total =
  QCheck.Test.make ~count:1000 ~name:"Udp_header.parse never raises on garbage"
    arbitrary_bytes (fun bytes ->
      no_exception (fun () -> Packet.Udp_header.parse bytes ~off:0))

let prop_segment_parse_total =
  QCheck.Test.make ~count:1000 ~name:"Segment.parse never raises on garbage"
    arbitrary_bytes (fun bytes ->
      no_exception (fun () -> Packet.Segment.parse bytes ~off:0))

let prop_segment_parse_total_on_mutated_valid =
  (* Mutation fuzzing: start from a valid datagram, flip a few bytes. *)
  QCheck.Test.make ~count:500 ~name:"Segment.parse never raises on mutations"
    QCheck.(pair arbitrary_segment (list_of_size (Gen.int_range 1 8) (pair small_nat small_nat)))
    (fun (segment, flips) ->
      let wire = Packet.Segment.to_bytes segment in
      List.iter
        (fun (position, value) ->
          let i = position mod Bytes.length wire in
          Bytes.set_uint8 wire i (value land 0xFF))
        flips;
      no_exception (fun () -> Packet.Segment.parse wire ~off:0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_segment_roundtrip; prop_flow_key_injective_on_reverse;
      prop_fragment_reassemble_roundtrip; prop_ipv4_parse_total;
      prop_tcp_parse_total; prop_udp_parse_total; prop_segment_parse_total;
      prop_segment_parse_total_on_mutated_valid ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "packet"
    [ ( "checksum",
        [ Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071_example;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          Alcotest.test_case "verify roundtrip" `Quick test_checksum_verify_roundtrip;
          Alcotest.test_case "bounds" `Quick test_checksum_bounds;
          Alcotest.test_case "all zero" `Quick test_checksum_zero_region ] );
      ( "ipv4-addr",
        [ Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "invalid strings" `Quick test_addr_invalid;
          Alcotest.test_case "invalid octets" `Quick test_addr_octets_invalid;
          Alcotest.test_case "compare" `Quick test_addr_compare ] );
      ( "ipv4-header",
        [ Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_ipv4_rejects_corruption;
          Alcotest.test_case "rejects truncation" `Quick test_ipv4_rejects_truncation;
          Alcotest.test_case "rejects bad version" `Quick test_ipv4_rejects_bad_version;
          Alcotest.test_case "validation" `Quick test_ipv4_validation;
          Alcotest.test_case "protocol codes" `Quick test_protocol_codes ] );
      ( "tcp-header",
        [ Alcotest.test_case "roundtrip plain" `Quick test_tcp_roundtrip_plain;
          Alcotest.test_case "roundtrip options" `Quick test_tcp_roundtrip_options;
          Alcotest.test_case "unknown option" `Quick test_tcp_unknown_option;
          Alcotest.test_case "pseudo-header checksum" `Quick
            test_tcp_checksum_with_pseudo_header;
          Alcotest.test_case "bad data offset" `Quick test_tcp_rejects_bad_offset;
          Alcotest.test_case "validation" `Quick test_tcp_validation ] );
      ( "flow",
        [ Alcotest.test_case "of_headers" `Quick test_flow_of_headers;
          Alcotest.test_case "reverse involution" `Quick test_flow_reverse_involution;
          Alcotest.test_case "key layout" `Quick test_flow_key_bytes_layout;
          Alcotest.test_case "total order" `Quick test_flow_compare_total_order;
          Alcotest.test_case "endpoint validation" `Quick test_endpoint_validation ] );
      ( "segment",
        [ Alcotest.test_case "roundtrip" `Quick test_segment_roundtrip;
          Alcotest.test_case "detects corruption" `Quick
            test_segment_detects_any_corruption;
          Alcotest.test_case "rejects fragments" `Quick test_segment_rejects_fragment;
          Alcotest.test_case "skip checksum option" `Quick test_segment_skip_checksum ] );
      ( "udp",
        [ Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_udp_checksum_detects_corruption;
          Alcotest.test_case "optional checksum" `Quick test_udp_optional_checksum;
          Alcotest.test_case "flow key" `Quick test_udp_flow_key;
          Alcotest.test_case "validation" `Quick test_udp_validation;
          Alcotest.test_case "demultiplexes" `Quick test_udp_demultiplexes ] );
      ( "reassembly",
        [ Alcotest.test_case "fragment shapes" `Quick test_fragment_shapes;
          Alcotest.test_case "DF raises" `Quick test_fragment_df_raises;
          Alcotest.test_case "small passthrough" `Quick
            test_fragment_small_passthrough;
          Alcotest.test_case "in order" `Quick test_reassemble_in_order;
          Alcotest.test_case "out of order" `Quick test_reassemble_out_of_order;
          Alcotest.test_case "missing fragment pends" `Quick
            test_reassemble_missing_fragment_pends;
          Alcotest.test_case "duplicate and overlap" `Quick
            test_reassemble_duplicate_and_overlap;
          Alcotest.test_case "expiry" `Quick test_reassembly_expiry;
          Alcotest.test_case "rejects malformed" `Quick
            test_reassembly_rejects_malformed ] );
      ( "pcap",
        [ Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_pcap_bad_magic;
          Alcotest.test_case "truncated global header" `Quick
            test_pcap_truncated_global_header;
          Alcotest.test_case "truncated record header" `Quick
            test_pcap_truncated_record_header;
          Alcotest.test_case "absurd record length" `Quick
            test_pcap_absurd_record_length;
          Alcotest.test_case "truncated record body" `Quick
            test_pcap_truncated_record_body;
          Alcotest.test_case "empty capture" `Quick
            test_pcap_empty_capture_is_ok ] );
      ( "hardening",
        [ Alcotest.test_case "every single-bit flip rejected" `Quick
            test_every_single_bit_flip_rejected ] );
      ("properties", qcheck_cases) ]
