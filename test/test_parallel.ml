(* Tests for the multicore demultiplexers: functional agreement with
   the sequential algorithms, and safety under concurrent use. *)

let flow i = Sim.Topology.flow_of_client i
let flows n = Array.init n flow

(* ------------------------------------------------------------------ *)
(* Single-domain functional behaviour                                  *)

let test_striped_agrees_with_sequent () =
  (* Same algorithm, same accounting: a fixed lookup sequence produces
     identical examined counts on Striped and on Demux.Sequent. *)
  let population = flows 300 in
  let striped = Parallel.Striped.create ~chains:19 () in
  let sequential =
    Demux.Sequent.create ~chains:19 ~hasher:Hashing.Hashers.multiplicative ()
  in
  Array.iter
    (fun f ->
      ignore (Parallel.Striped.insert striped f ());
      ignore (Demux.Sequent.insert sequential f ()))
    population;
  let rng = Numerics.Rng.create ~seed:7 in
  for _ = 1 to 3000 do
    let f = population.(Numerics.Rng.int rng ~bound:300) in
    (match (Parallel.Striped.lookup striped f, Demux.Sequent.lookup sequential f) with
    | Some a, Some b ->
      if not (Packet.Flow.equal a.Demux.Pcb.flow b.Demux.Pcb.flow) then
        Alcotest.fail "diverged"
    | _ -> Alcotest.fail "lookup failed")
  done;
  let striped_stats = Parallel.Striped.stats striped in
  let sequential_stats =
    Demux.Lookup_stats.snapshot (Demux.Sequent.stats sequential)
  in
  Alcotest.(check int)
    "identical examined counts"
    sequential_stats.Demux.Lookup_stats.pcbs_examined
    striped_stats.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int)
    "identical cache hits" sequential_stats.Demux.Lookup_stats.cache_hits
    striped_stats.Demux.Lookup_stats.cache_hits

let test_striped_basics () =
  let d = Parallel.Striped.create ~chains:7 () in
  Alcotest.(check int) "chains" 7 (Parallel.Striped.chains d);
  ignore (Parallel.Striped.insert d (flow 1) ());
  (match Parallel.Striped.insert d (flow 1) () with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "length" 1 (Parallel.Striped.length d);
  Alcotest.(check bool) "found" true (Parallel.Striped.lookup d (flow 1) <> None);
  Alcotest.(check bool) "absent" true (Parallel.Striped.lookup d (flow 2) = None);
  Parallel.Striped.note_send d (flow 1);
  Alcotest.(check bool) "removed" true (Parallel.Striped.remove d (flow 1) <> None);
  Alcotest.(check bool) "remove absent" true (Parallel.Striped.remove d (flow 1) = None);
  Alcotest.(check int) "empty" 0 (Parallel.Striped.length d)

let test_coarse_wrapper () =
  let d = Parallel.Coarse.create Demux.Registry.Bsd in
  Alcotest.(check string) "name" "coarse:bsd" (Parallel.Coarse.name d);
  ignore (Parallel.Coarse.insert d (flow 3) ());
  Alcotest.(check bool) "found" true (Parallel.Coarse.lookup d (flow 3) <> None);
  Parallel.Coarse.note_send d (flow 3);
  let stats = Parallel.Coarse.stats d in
  Alcotest.(check int) "lookups" 1 stats.Demux.Lookup_stats.lookups;
  Alcotest.(check bool) "removed" true (Parallel.Coarse.remove d (flow 3) <> None);
  Alcotest.(check int) "length" 0 (Parallel.Coarse.length d)

(* ------------------------------------------------------------------ *)
(* Concurrency                                                         *)

let test_concurrent_disjoint_writers () =
  (* Each domain owns a disjoint key range and hammers insert/remove;
     a shared read-only range is looked up by everyone.  Afterwards
     the table must contain exactly the shared range plus whatever
     each domain left behind. *)
  let d = Parallel.Striped.create ~chains:19 () in
  let shared = 100 in
  for i = 0 to shared - 1 do
    ignore (Parallel.Striped.insert d (flow i) ())
  done;
  let writers = 4 in
  let keys_per_writer = 50 in
  let iterations = 500 in
  let workers =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            let base = shared + (w * keys_per_writer) in
            let rng = Numerics.Rng.create ~seed:(100 + w) in
            for _ = 1 to iterations do
              (* Private churn. *)
              let k = base + Numerics.Rng.int rng ~bound:keys_per_writer in
              (match Parallel.Striped.lookup d (flow k) with
              | Some _ -> ignore (Parallel.Striped.remove d (flow k))
              | None -> (
                try ignore (Parallel.Striped.insert d (flow k) ())
                with Invalid_argument _ ->
                  (* Impossible: the range is private. *)
                  Alcotest.fail "phantom duplicate"));
              (* Shared reads. *)
              let s = Numerics.Rng.int rng ~bound:shared in
              if Parallel.Striped.lookup d (flow s) = None then
                Alcotest.fail "shared key vanished"
            done;
            (* Leave the private range in a known state: all present. *)
            for k = base to base + keys_per_writer - 1 do
              if Parallel.Striped.lookup d (flow k) = None then
                ignore (Parallel.Striped.insert d (flow k) ())
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int)
    "final population" (shared + (writers * keys_per_writer))
    (Parallel.Striped.length d);
  for i = 0 to shared + (writers * keys_per_writer) - 1 do
    if Parallel.Striped.lookup d (flow i) = None then
      Alcotest.failf "key %d missing after join" i
  done

let test_concurrent_lookups_return_right_pcb () =
  (* Pure readers from several domains must always get the PCB whose
     flow matches the query — no torn reads through the caches. *)
  let d = Parallel.Striped.create ~chains:19 () in
  let population = flows 500 in
  Array.iter (fun f -> ignore (Parallel.Striped.insert d f ())) population;
  let failures = Atomic.make 0 in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rng = Numerics.Rng.create ~seed:(w + 1) in
            for _ = 1 to 20_000 do
              let f = population.(Numerics.Rng.int rng ~bound:500) in
              match Parallel.Striped.lookup d f with
              | Some pcb ->
                if not (Packet.Flow.equal pcb.Demux.Pcb.flow f) then
                  Atomic.incr failures
              | None -> Atomic.incr failures
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong answers" 0 (Atomic.get failures);
  let stats = Parallel.Striped.stats d in
  Alcotest.(check int) "all lookups counted" 80_000
    stats.Demux.Lookup_stats.lookups

let test_coarse_concurrent_safety () =
  let d = Parallel.Coarse.create Demux.Registry.Bsd in
  let population = flows 200 in
  Array.iter (fun f -> ignore (Parallel.Coarse.insert d f ())) population;
  let failures = Atomic.make 0 in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let rng = Numerics.Rng.create ~seed:(w + 9) in
            for _ = 1 to 5_000 do
              let f = population.(Numerics.Rng.int rng ~bound:200) in
              match Parallel.Coarse.lookup d f with
              | Some pcb ->
                if not (Packet.Flow.equal pcb.Demux.Pcb.flow f) then
                  Atomic.incr failures
              | None -> Atomic.incr failures
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no wrong answers" 0 (Atomic.get failures);
  Alcotest.(check int) "all lookups counted" 20_000
    (Parallel.Coarse.stats d).Demux.Lookup_stats.lookups

(* ------------------------------------------------------------------ *)
(* Batched operations                                                  *)

let test_lookup_batch_matches_per_packet () =
  (* Same flows, same order: the batch API must find exactly what
     per-packet lookups find, and charge identical examined counts
     (plus the batch counters). *)
  let population = flows 300 in
  let batched = Parallel.Striped.create ~chains:19 () in
  let plain = Parallel.Striped.create ~chains:19 () in
  Array.iter
    (fun f ->
      ignore (Parallel.Striped.insert batched f ());
      ignore (Parallel.Striped.insert plain f ()))
    population;
  let rng = Numerics.Rng.create ~seed:11 in
  let burst =
    Array.init 256 (fun _ ->
        (* Mix hits and guaranteed misses. *)
        let i = Numerics.Rng.int rng ~bound:400 in
        flow i)
  in
  let found_batch = Parallel.Striped.lookup_batch batched burst in
  let found_plain =
    Array.fold_left
      (fun n f ->
        if Parallel.Striped.lookup plain f <> None then n + 1 else n)
      0 burst
  in
  Alcotest.(check int) "same found count" found_plain found_batch;
  let sb = Parallel.Striped.stats batched in
  let sp = Parallel.Striped.stats plain in
  Alcotest.(check int) "same lookups" sp.Demux.Lookup_stats.lookups
    sb.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "same examined" sp.Demux.Lookup_stats.pcbs_examined
    sb.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "same found" sp.Demux.Lookup_stats.found
    sb.Demux.Lookup_stats.found;
  Alcotest.(check bool) "batches counted" true
    (sb.Demux.Lookup_stats.batches > 0);
  Alcotest.(check int) "plain saw no batches" 0 sp.Demux.Lookup_stats.batches;
  Alcotest.(check int) "empty batch" 0
    (Parallel.Striped.lookup_batch batched [||])

let test_lookup_batch_keyed_matches_unkeyed () =
  (* Pre-hashed batches must group, find, and account exactly like the
     self-hashing batch path, since the keyed path just reuses hashes
     the dispatcher computed upstream. *)
  let population = flows 300 in
  let keyed = Parallel.Striped.create ~chains:19 () in
  let plain = Parallel.Striped.create ~chains:19 () in
  Array.iter
    (fun f ->
      ignore (Parallel.Striped.insert keyed f ());
      ignore (Parallel.Striped.insert plain f ()))
    population;
  let rng = Numerics.Rng.create ~seed:12 in
  let burst =
    Array.init 256 (fun _ -> flow (Numerics.Rng.int rng ~bound:400))
  in
  let hashes = Array.map (Parallel.Striped.hash_flow keyed) burst in
  let found_keyed = Parallel.Striped.lookup_batch_keyed keyed burst ~hashes in
  let found_plain = Parallel.Striped.lookup_batch plain burst in
  Alcotest.(check int) "same found count" found_plain found_keyed;
  let sk = Parallel.Striped.stats keyed in
  let sp = Parallel.Striped.stats plain in
  Alcotest.(check int) "same lookups" sp.Demux.Lookup_stats.lookups
    sk.Demux.Lookup_stats.lookups;
  Alcotest.(check int) "same examined" sp.Demux.Lookup_stats.pcbs_examined
    sk.Demux.Lookup_stats.pcbs_examined;
  Alcotest.(check int) "same batches" sp.Demux.Lookup_stats.batches
    sk.Demux.Lookup_stats.batches;
  Alcotest.(check int) "empty batch" 0
    (Parallel.Striped.lookup_batch_keyed keyed [||] ~hashes:[||]);
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Striped.lookup_batch_keyed: flows/hashes length mismatch")
    (fun () ->
      ignore (Parallel.Striped.lookup_batch_keyed keyed burst ~hashes:[| 1 |]))

let test_insert_batch () =
  let d = Parallel.Striped.create ~chains:7 () in
  let entries = Array.init 50 (fun i -> (flow i, i)) in
  let pcbs = Parallel.Striped.insert_batch d entries in
  Alcotest.(check int) "all inserted" 50 (Parallel.Striped.length d);
  Array.iteri
    (fun i pcb ->
      if not (Packet.Flow.equal pcb.Demux.Pcb.flow (flow i)) then
        Alcotest.failf "pcb %d out of order" i)
    pcbs;
  (match Parallel.Striped.insert_batch d [| (flow 0, 99) |] with
  | _ -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ());
  let found = Parallel.Striped.lookup_batch d (Array.map fst entries) in
  Alcotest.(check int) "all findable" 50 found

let test_coarse_batch () =
  let d = Parallel.Coarse.create Demux.Registry.Bsd in
  let entries = Array.init 40 (fun i -> (flow i, ())) in
  ignore (Parallel.Coarse.insert_batch d entries);
  Alcotest.(check int) "inserted" 40 (Parallel.Coarse.length d);
  let burst = Array.init 80 (fun i -> flow i) in
  Alcotest.(check int) "half found" 40 (Parallel.Coarse.lookup_batch d burst);
  Alcotest.(check bool) "batches counted" true
    ((Parallel.Coarse.stats d).Demux.Lookup_stats.batches >= 2)

(* ------------------------------------------------------------------ *)
(* SPSC ring                                                           *)

let test_ring_basics () =
  let ring = Parallel.Ring.create ~capacity:3 in
  (* Capacity rounds up to a power of two. *)
  Alcotest.(check int) "capacity" 4 (Parallel.Ring.capacity ring);
  Alcotest.(check bool) "empty" true (Parallel.Ring.is_empty ring);
  Alcotest.(check bool) "pop empty" true (Parallel.Ring.try_pop ring = None);
  for i = 1 to 4 do
    Alcotest.(check bool) "push" true (Parallel.Ring.try_push ring i)
  done;
  Alcotest.(check bool) "full" false (Parallel.Ring.try_push ring 5);
  Alcotest.(check int) "length" 4 (Parallel.Ring.length ring);
  Alcotest.(check bool) "fifo" true (Parallel.Ring.try_pop ring = Some 1);
  Alcotest.(check bool) "room again" true (Parallel.Ring.try_push ring 5);
  (* Close: pushes refused, pops drain what is left. *)
  Parallel.Ring.close ring;
  Alcotest.(check bool) "closed" true (Parallel.Ring.is_closed ring);
  (match Parallel.Ring.try_push ring 6 with
  | _ -> Alcotest.fail "push after close accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list int)) "drains in order" [ 2; 3; 4; 5 ]
    (List.filter_map
       (fun _ -> Parallel.Ring.try_pop ring)
       [ (); (); (); () ]);
  Alcotest.(check bool) "drained" true (Parallel.Ring.try_pop ring = None);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity <= 0") (fun () ->
      ignore (Parallel.Ring.create ~capacity:0))

let test_ring_spsc_transfer () =
  (* One producer domain, one consumer domain, every value delivered
     exactly once and in order — including values pushed right before
     close (the drain-after-close protocol). *)
  let ring = Parallel.Ring.create ~capacity:8 in
  let total = 50_000 in
  let consumer =
    Domain.spawn (fun () ->
        let received = ref [] and count = ref 0 and expected = ref 0 in
        let consume v =
          if v <> !expected then received := v :: !received;
          incr expected;
          incr count
        in
        let rec drain () =
          match Parallel.Ring.try_pop ring with
          | Some v -> consume v; drain ()
          | None -> ()
        in
        let rec loop () =
          match Parallel.Ring.try_pop ring with
          | Some v -> consume v; loop ()
          | None ->
            if Parallel.Ring.is_closed ring then drain ()
            else begin
              Domain.cpu_relax ();
              loop ()
            end
        in
        loop ();
        (!count, !received))
  in
  for i = 0 to total - 1 do
    while not (Parallel.Ring.try_push ring i) do
      Domain.cpu_relax ()
    done
  done;
  Parallel.Ring.close ring;
  let count, out_of_order = Domain.join consumer in
  Alcotest.(check int) "every push popped" total count;
  Alcotest.(check (list int)) "in order" [] out_of_order

let test_ring_produce_close_race () =
  (* Property: over seeded rounds whose capacity, stream length and
     consumer pacing vary where [close] lands relative to the
     consumer's progress, the documented drain-after-close protocol
     (ring.mli) delivers every element exactly once and in order —
     and a push after close raises.  [delivered] counts the in-order
     prefix, so a lost element shows as a short count and a
     duplicated or reordered one as [disorder > 0]. *)
  for round = 0 to 24 do
    let rng = Random.State.make [| 0xC105E; round |] in
    let capacity = 1 lsl Random.State.int rng 4 in
    let total = 1 + Random.State.int rng 400 in
    let jitter = Random.State.int rng 3 in
    let ring = Parallel.Ring.create ~capacity in
    let consumer =
      Domain.spawn (fun () ->
          let next = ref 0 and disorder = ref 0 in
          let consume v = if v = !next then incr next else incr disorder in
          let rec drain () =
            match Parallel.Ring.try_pop ring with
            | Some v -> consume v; drain ()
            | None -> ()
          in
          let rec loop () =
            match Parallel.Ring.try_pop ring with
            | Some v -> consume v; loop ()
            | None ->
              if Parallel.Ring.is_closed ring then drain ()
              else begin
                for _ = 0 to jitter do Domain.cpu_relax () done;
                loop ()
              end
          in
          loop ();
          (!next, !disorder))
    in
    for i = 0 to total - 1 do
      while not (Parallel.Ring.try_push ring i) do Domain.cpu_relax () done
    done;
    Parallel.Ring.close ring;
    (match Parallel.Ring.try_push ring total with
    | _ -> Alcotest.fail "push after close accepted"
    | exception Invalid_argument _ -> ());
    let delivered, disorder = Domain.join consumer in
    Alcotest.(check int)
      (Printf.sprintf "round %d: every element, in order" round)
      total delivered;
    Alcotest.(check int)
      (Printf.sprintf "round %d: no duplicate or reordered element" round)
      0 disorder
  done

(* ------------------------------------------------------------------ *)
(* Pressure controller                                                 *)

let check_tier label expected p =
  Alcotest.(check string) label
    (Parallel.Pressure.tier_name expected)
    (Parallel.Pressure.tier_name (Parallel.Pressure.tier p))

let test_pressure_hysteresis () =
  let config = Parallel.Pressure.config ~trip:3 ~hold:2 () in
  let p = Parallel.Pressure.create ~config () in
  (* Default watermarks: hot at >= 75% occupancy, calm at <= 25%,
     neutral in between. *)
  let hot () = Parallel.Pressure.note_ring_depth p ~depth:8 ~capacity:8 in
  let calm () = Parallel.Pressure.note_ring_depth p ~depth:0 ~capacity:8 in
  let mid () = Parallel.Pressure.note_ring_depth p ~depth:4 ~capacity:8 in
  check_tier "fresh controller is Normal" Parallel.Pressure.Normal p;
  hot ();
  hot ();
  check_tier "two hots under trip=3 hold" Parallel.Pressure.Normal p;
  mid ();
  hot ();
  hot ();
  check_tier "neutral resets the hot streak" Parallel.Pressure.Normal p;
  hot ();
  check_tier "third consecutive hot escalates" Parallel.Pressure.Shed_new_flows
    p;
  hot ();
  hot ();
  hot ();
  check_tier "streaks escalate one tier each" Parallel.Pressure.Drop_batches p;
  calm ();
  mid ();
  calm ();
  check_tier "neutral resets the calm streak too" Parallel.Pressure.Drop_batches
    p;
  calm ();
  check_tier "hold=2 calm observations recover one tier"
    Parallel.Pressure.Shed_new_flows p;
  calm ();
  calm ();
  check_tier "recovery steps tier by tier" Parallel.Pressure.Normal p;
  Alcotest.(check int) "every sample counted" 15
    (Parallel.Pressure.observations p)

let test_pressure_insert_latency_watermark () =
  let config = Parallel.Pressure.config ~trip:1 ~hold:1 () in
  let p = Parallel.Pressure.create ~config () in
  (* Default latency watermarks: hot at >= 50_000 ns, calm at <=
     5_000 ns. *)
  Parallel.Pressure.note_insert_ns p 60_000;
  check_tier "slow insert escalates" Parallel.Pressure.Shed_new_flows p;
  Parallel.Pressure.note_insert_ns p 20_000;
  check_tier "between watermarks holds" Parallel.Pressure.Shed_new_flows p;
  Parallel.Pressure.note_insert_ns p 1_000;
  check_tier "fast insert recovers" Parallel.Pressure.Normal p

let test_pressure_force_and_counters () =
  let config = Parallel.Pressure.config ~trip:1 ~hold:1 () in
  let p = Parallel.Pressure.create ~config () in
  Parallel.Pressure.force p Parallel.Pressure.Reject;
  check_tier "forced" Parallel.Pressure.Reject p;
  Alcotest.(check bool) "rejecting" true (Parallel.Pressure.rejecting p);
  Alcotest.(check bool) "drops batches" true
    (Parallel.Pressure.drops_batches p);
  Alcotest.(check bool) "sheds new flows" false
    (Parallel.Pressure.admits_new_flows p);
  for _ = 1 to 20 do
    Parallel.Pressure.note_ring_depth p ~depth:0 ~capacity:8
  done;
  check_tier "observations ignored while forced" Parallel.Pressure.Reject p;
  Parallel.Pressure.note_shed_flow p;
  Parallel.Pressure.note_dropped_batch p ~packets:3;
  Parallel.Pressure.note_rejected p ~packets:7;
  Alcotest.(check int) "shed flows" 1 (Parallel.Pressure.shed_flows p);
  Alcotest.(check int) "dropped batches" 1
    (Parallel.Pressure.dropped_batches p);
  Alcotest.(check int) "dropped batch packets" 3
    (Parallel.Pressure.dropped_batch_packets p);
  Alcotest.(check int) "rejected packets" 7
    (Parallel.Pressure.rejected_packets p);
  Alcotest.(check (list (pair string int))) "counters keyed by tier"
    [ ("shed-new-flows", 1); ("drop-batches", 3); ("reject", 7) ]
    (Parallel.Pressure.counters p);
  Parallel.Pressure.release p;
  Parallel.Pressure.note_ring_depth p ~depth:0 ~capacity:8;
  check_tier "released: recovery resumes from Reject"
    Parallel.Pressure.Drop_batches p;
  Parallel.Pressure.note_ring_depth p ~depth:0 ~capacity:8;
  Parallel.Pressure.note_ring_depth p ~depth:0 ~capacity:8;
  check_tier "all the way back down" Parallel.Pressure.Normal p;
  (* Entries into each tier: Normal once more at the end, Reject once
     (the force), and each intermediate tier once on the way down. *)
  Alcotest.(check (list (pair string int))) "transitions"
    [ ("normal", 1); ("shed-new-flows", 1); ("drop-batches", 1);
      ("reject", 1) ]
    (Parallel.Pressure.transitions p)

let test_dispatcher_under_pressure () =
  let population = flows 40 in
  let stream = Array.concat (List.init 25 (fun _ -> population)) in
  let total = Array.length stream in
  (* Forced Reject: the producer refuses every batch before touching a
     ring, so nothing is delivered and everything is accounted. *)
  let p = Parallel.Pressure.create () in
  Parallel.Pressure.force p Parallel.Pressure.Reject;
  let result =
    Parallel.Dispatcher.run ~pressure:p ~workers:3 ~batch:8
      ~lookup_batch:(fun batch ~hashes:_ -> Array.length batch)
      stream
  in
  Alcotest.(check int) "all packets offered" total
    result.Parallel.Dispatcher.packets;
  Alcotest.(check int) "nothing delivered at Reject" 0
    (Array.fold_left ( + ) 0 result.Parallel.Dispatcher.per_worker_packets);
  Alcotest.(check int) "every packet accounted as rejected" total
    result.Parallel.Dispatcher.rejected_packets;
  Alcotest.(check int) "controller ledger agrees" total
    (Parallel.Pressure.rejected_packets p);
  (* Forced Drop_batches with a tiny ring: whatever is not delivered
     must be accounted as tier drops — offered = delivered + lost. *)
  let p = Parallel.Pressure.create () in
  Parallel.Pressure.force p Parallel.Pressure.Drop_batches;
  let result =
    Parallel.Dispatcher.run ~pressure:p ~workers:2 ~batch:4 ~ring_capacity:1
      ~lookup_batch:(fun batch ~hashes:_ -> Array.length batch)
      stream
  in
  let delivered =
    Array.fold_left ( + ) 0 result.Parallel.Dispatcher.per_worker_packets
  in
  Alcotest.(check int) "conservation: offered = delivered + lost" total
    (delivered + Parallel.Dispatcher.lost_packets result);
  Alcotest.(check int) "tier drops agree with the controller"
    result.Parallel.Dispatcher.tier_dropped_packets
    (Parallel.Pressure.dropped_batch_packets p)

(* ------------------------------------------------------------------ *)
(* Dispatcher pipeline                                                 *)

let test_dispatcher_pipeline () =
  let population = flows 200 in
  let d = Parallel.Striped.create ~chains:19 () in
  Array.iter (fun f -> ignore (Parallel.Striped.insert d f ())) population;
  (* 5000 packets over 250 flows: 1/5 of the stream misses. *)
  let rng = Numerics.Rng.create ~seed:3 in
  let stream = Array.init 5_000 (fun _ -> flow (Numerics.Rng.int rng ~bound:250)) in
  let expected_found =
    Array.fold_left
      (fun n f -> if Parallel.Striped.lookup d f <> None then n + 1 else n)
      0 stream
  in
  let obs = Obs.Registry.create () in
  let result =
    Parallel.Dispatcher.run ~obs ~workers:3 ~batch:16
      ~lookup_batch:(fun batch ~hashes ->
        Parallel.Striped.lookup_batch_keyed d batch ~hashes)
      stream
  in
  Alcotest.(check int) "all packets offered" 5_000
    result.Parallel.Dispatcher.packets;
  Alcotest.(check int) "all packets delivered" 5_000
    (Array.fold_left ( + ) 0 result.Parallel.Dispatcher.per_worker_packets);
  Alcotest.(check int) "found matches sequential" expected_found
    result.Parallel.Dispatcher.found;
  Alcotest.(check int) "lossless by default" 0
    result.Parallel.Dispatcher.dropped_packets;
  Alcotest.(check bool) "batches sized" true
    (result.Parallel.Dispatcher.batches
     >= 5_000 / 16 (* at least ceil per worker *));
  (* The obs hooks registered and saw every push. *)
  let metrics = Obs.Registry.snapshot obs in
  (match Obs.Registry.find metrics "pipeline.batch_size" with
  | Some { Obs.Registry.data = Obs.Registry.Histogram (summary, _); _ } ->
    Alcotest.(check int) "one histogram sample per batch"
      result.Parallel.Dispatcher.batches summary.Obs.Histogram.count
  | _ -> Alcotest.fail "pipeline.batch_size missing");
  (match Obs.Registry.find metrics "pipeline.backpressure_drops" with
  | Some { Obs.Registry.data = Obs.Registry.Counter 0; _ } -> ()
  | _ -> Alcotest.fail "pipeline.backpressure_drops missing or nonzero");
  Alcotest.check_raises "workers 0"
    (Invalid_argument "Dispatcher.run: workers <= 0") (fun () ->
      ignore
        (Parallel.Dispatcher.run ~workers:0 ~batch:1
           ~lookup_batch:(fun _ ~hashes:_ -> 0) stream))

let test_dispatcher_sharding_is_by_flow () =
  (* Every packet of one flow must land on the same worker: feed a
     stream where each flow appears many times and check the per-worker
     totals equal the sum over flows assigned to that worker. *)
  let hasher = Hashing.Hashers.multiplicative in
  let workers = 4 in
  let population = flows 40 in
  let repeats = 25 in
  let stream = Array.concat (List.init repeats (fun _ -> population)) in
  let expected = Array.make workers 0 in
  Array.iter
    (fun f ->
      let w = Hashing.Hashers.bucket_flow hasher ~buckets:workers f in
      expected.(w) <- expected.(w) + repeats)
    population;
  let result =
    Parallel.Dispatcher.run ~hasher ~workers ~batch:8
      ~lookup_batch:(fun batch ~hashes:_ -> Array.length batch) stream
  in
  Alcotest.(check (array int)) "per-worker counts follow the flow hash"
    expected result.Parallel.Dispatcher.per_worker_packets

(* ------------------------------------------------------------------ *)
(* Throughput harness                                                  *)

let test_throughput_smoke () =
  let result =
    Parallel.Throughput.run ~connections:200 ~lookups_per_domain:20_000
      ~domains:2 (Parallel.Throughput.Striped_sequent 19)
  in
  Alcotest.(check string) "target" "striped:sequent-19" result.Parallel.Throughput.target;
  Alcotest.(check int) "total" 40_000 result.Parallel.Throughput.total_lookups;
  Alcotest.(check int) "per-packet mode" 1 result.Parallel.Throughput.batch;
  Alcotest.(check bool) "positive rate" true
    (result.Parallel.Throughput.lookups_per_second > 0.0);
  Alcotest.(check bool) "elapsed is positive" true
    (result.Parallel.Throughput.elapsed_seconds > 0.0);
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Throughput.run: domains <= 0") (fun () ->
      ignore
        (Parallel.Throughput.run ~domains:0 Parallel.Throughput.Coarse_bsd));
  Alcotest.check_raises "batch 0"
    (Invalid_argument "Throughput.run: batch <= 0") (fun () ->
      ignore
        (Parallel.Throughput.run ~domains:1 ~batch:0
           Parallel.Throughput.Coarse_bsd))

let test_throughput_batched () =
  (* Batched mode with the monotonic clock: every lookup accounted,
     every latency sample non-negative, no backwards clock reads. *)
  let obs = Obs.Registry.create () in
  let result =
    Parallel.Throughput.run ~obs ~connections:200 ~lookups_per_domain:10_000
      ~batch:8 ~domains:2 (Parallel.Throughput.Striped_sequent 19)
  in
  Alcotest.(check int) "total" 20_000 result.Parallel.Throughput.total_lookups;
  Alcotest.(check int) "batch recorded" 8 result.Parallel.Throughput.batch;
  Alcotest.(check int) "no backwards clock reads" 0
    result.Parallel.Throughput.clock_went_backwards;
  (match result.Parallel.Throughput.latency with
  | None -> Alcotest.fail "no latency histogram with ?obs"
  | Some histogram ->
    Alcotest.(check int) "every lookup has a latency sample" 20_000
      (Obs.Histogram.count histogram);
    Alcotest.(check bool) "no negative samples" true
      (Obs.Histogram.min_value histogram >= 0));
  match
    Obs.Registry.find
      (Obs.Registry.snapshot obs)
      "parallel.clock_went_backwards"
  with
  | Some { Obs.Registry.data = Obs.Registry.Counter 0; _ } -> ()
  | _ -> Alcotest.fail "clock_went_backwards counter missing or nonzero"

let test_throughput_epoch_table () =
  (* The lock-free target: same harness, same monotonic-clock
     discipline (backwards reads clamped and counted, never negative
     samples) as the striped targets. *)
  let result =
    Parallel.Throughput.run ~connections:200 ~lookups_per_domain:20_000
      ~domains:2 Parallel.Throughput.Epoch_table
  in
  Alcotest.(check string) "target" "epoch:table"
    result.Parallel.Throughput.target;
  Alcotest.(check int) "total" 40_000 result.Parallel.Throughput.total_lookups;
  Alcotest.(check bool) "positive rate" true
    (result.Parallel.Throughput.lookups_per_second > 0.0);
  Alcotest.(check int) "no backwards clock reads" 0
    result.Parallel.Throughput.clock_went_backwards;
  (* Batched mode drives lookup_batch under one pin per batch. *)
  let batched =
    Parallel.Throughput.run ~connections:200 ~lookups_per_domain:10_000
      ~batch:8 ~domains:2 Parallel.Throughput.Epoch_table
  in
  Alcotest.(check int) "batched total" 20_000
    batched.Parallel.Throughput.total_lookups;
  Alcotest.(check int) "batched: no backwards clock reads" 0
    batched.Parallel.Throughput.clock_went_backwards

let test_worker_rng () =
  let a = Parallel.Worker_rng.create 5 in
  let b = Parallel.Worker_rng.create 5 in
  for _ = 1 to 50 do
    let x = Parallel.Worker_rng.next a in
    Alcotest.(check int) "deterministic" x (Parallel.Worker_rng.next b);
    Alcotest.(check bool) "non-negative" true (x >= 0)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Worker_rng.int: bound must be positive") (fun () ->
      ignore (Parallel.Worker_rng.int a ~bound:0))

(* Rejection sampling: 10^6 draws across qcheck-chosen (seed, bound)
   pairs, every one in [0, bound). *)
let worker_rng_in_bounds =
  QCheck.Test.make ~count:100 ~name:"Worker_rng.int stays in [0, bound)"
    QCheck.(pair small_nat (int_range 1 (1 lsl 30)))
    (fun (seed, bound) ->
      let rng = Parallel.Worker_rng.create seed in
      let ok = ref true in
      for _ = 1 to 10_000 do
        let x = Parallel.Worker_rng.int rng ~bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let test_worker_rng_uniform () =
  (* Chi-squared uniformity smoke test: 160_000 draws into 16 cells.
     The old [next mod bound] path is bias-free only when the bound
     divides 2^62; rejection sampling must pass for any bound.  15
     degrees of freedom: critical value 37.7 at p = 0.001; the seed is
     fixed, so this cannot flake. *)
  let bound = 16 in
  let draws = 160_000 in
  let cells = Array.make bound 0 in
  let rng = Parallel.Worker_rng.create 77 in
  for _ = 1 to draws do
    let x = Parallel.Worker_rng.int rng ~bound in
    cells.(x) <- cells.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc observed ->
        let d = float_of_int observed -. expected in
        acc +. (d *. d /. expected))
      0.0 cells
  in
  if chi2 > 37.7 then
    Alcotest.failf "chi-squared %.1f exceeds the p=0.001 critical value" chi2;
  (* An odd bound near 2^62 / k maximises the old method's bias; make
     sure rejection sampling still covers the whole range. *)
  let rng = Parallel.Worker_rng.create 78 in
  let big_bound = (0x3FFFFFFFFFFFFFFF / 3 * 2) + 1 in
  for _ = 1 to 1_000 do
    let x = Parallel.Worker_rng.int rng ~bound:big_bound in
    if x < 0 || x >= big_bound then Alcotest.fail "out of range"
  done

(* ------------------------------------------------------------------ *)
(* Merged-snapshot invariants under churn (striped.mli's caveat)       *)

let test_striped_stats_under_churn () =
  (* Four domains mutate while the main domain keeps merging stripe
     snapshots.  Per-stripe consistency survives the merge: every
     snapshot must satisfy lookups = found + not_found and
     cache_hits <= lookups.  After the join, the population-dependent
     identity holds too. *)
  let d = Parallel.Striped.create ~chains:19 () in
  let stable = 100 in
  for i = 0 to stable - 1 do
    ignore (Parallel.Striped.insert d (flow i) ())
  done;
  let stop = Atomic.make false in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let base = stable + (w * 50) in
            let rng = Numerics.Rng.create ~seed:(w + 40) in
            while not (Atomic.get stop) do
              let k = base + Numerics.Rng.int rng ~bound:50 in
              (match Parallel.Striped.lookup d (flow k) with
              | Some _ -> ignore (Parallel.Striped.remove d (flow k))
              | None -> ignore (Parallel.Striped.insert d (flow k) ()));
              ignore
                (Parallel.Striped.lookup_batch d
                   [| flow (Numerics.Rng.int rng ~bound:stable);
                      flow (Numerics.Rng.int rng ~bound:stable) |])
            done))
  in
  for _ = 1 to 200 do
    let s = Parallel.Striped.stats d in
    if
      s.Demux.Lookup_stats.lookups
      <> s.Demux.Lookup_stats.found + s.Demux.Lookup_stats.not_found
    then Alcotest.fail "lookups <> found + not_found in a live merge";
    if s.Demux.Lookup_stats.cache_hits > s.Demux.Lookup_stats.lookups then
      Alcotest.fail "cache_hits > lookups in a live merge"
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;
  let s = Parallel.Striped.stats d in
  Alcotest.(check int) "quiescent: inserts - removes = population"
    (Parallel.Striped.length d)
    (s.Demux.Lookup_stats.inserts - s.Demux.Lookup_stats.removes)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ( "functional",
        [ Alcotest.test_case "striped = sequent" `Quick
            test_striped_agrees_with_sequent;
          Alcotest.test_case "striped basics" `Quick test_striped_basics;
          Alcotest.test_case "coarse wrapper" `Quick test_coarse_wrapper ] );
      ( "concurrency",
        [ Alcotest.test_case "disjoint writers" `Quick
            test_concurrent_disjoint_writers;
          Alcotest.test_case "reader correctness" `Quick
            test_concurrent_lookups_return_right_pcb;
          Alcotest.test_case "coarse safety" `Quick test_coarse_concurrent_safety ] );
      ( "batched",
        [ Alcotest.test_case "lookup_batch = per-packet" `Quick
            test_lookup_batch_matches_per_packet;
          Alcotest.test_case "keyed batch = unkeyed" `Quick
            test_lookup_batch_keyed_matches_unkeyed;
          Alcotest.test_case "insert_batch" `Quick test_insert_batch;
          Alcotest.test_case "coarse batch" `Quick test_coarse_batch ] );
      ( "ring",
        [ Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "spsc transfer" `Quick test_ring_spsc_transfer;
          Alcotest.test_case "produce racing close" `Quick
            test_ring_produce_close_race ] );
      ( "pressure",
        [ Alcotest.test_case "hysteresis" `Quick test_pressure_hysteresis;
          Alcotest.test_case "insert-latency watermark" `Quick
            test_pressure_insert_latency_watermark;
          Alcotest.test_case "force, release, counters" `Quick
            test_pressure_force_and_counters;
          Alcotest.test_case "dispatcher under forced tiers" `Quick
            test_dispatcher_under_pressure ] );
      ( "dispatcher",
        [ Alcotest.test_case "pipeline" `Quick test_dispatcher_pipeline;
          Alcotest.test_case "sharding by flow" `Quick
            test_dispatcher_sharding_is_by_flow ] );
      ( "throughput",
        [ Alcotest.test_case "smoke" `Quick test_throughput_smoke;
          Alcotest.test_case "batched mode" `Quick test_throughput_batched;
          Alcotest.test_case "epoch table target" `Quick
            test_throughput_epoch_table;
          Alcotest.test_case "worker rng" `Quick test_worker_rng;
          QCheck_alcotest.to_alcotest worker_rng_in_bounds;
          Alcotest.test_case "rng uniformity" `Quick test_worker_rng_uniform ] );
      ( "stats",
        [ Alcotest.test_case "merged snapshots under churn" `Quick
            test_striped_stats_under_churn ] ) ]
