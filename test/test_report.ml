(* Tests for the report layer: CSV quoting, series output, ASCII
   plots and aligned tables. *)

let series label points = { Analysis.Comparison.label; points }

(* ------------------------------------------------------------------ *)
(* Csv                                                                 *)

let test_csv_escape () =
  Alcotest.(check string) "plain untouched" "bsd" (Report.Csv.escape "bsd");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Report.Csv.escape "say \"hi\"");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Report.Csv.escape "a\nb");
  Alcotest.(check string) "empty untouched" "" (Report.Csv.escape "")

let capture write =
  let path = Filename.temp_file "report" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      write oc;
      close_out oc;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      contents)

let test_csv_write_rows () =
  let out =
    capture (fun oc ->
        Report.Csv.write_rows oc
          [ [ "algorithm"; "mean" ]; [ "bsd"; "24.9" ]; [ "a,b"; "1" ] ])
  in
  Alcotest.(check string) "rows" "algorithm,mean\nbsd,24.9\n\"a,b\",1\n" out

let test_csv_series () =
  let s =
    Report.Csv.series_to_string
      [ series "bsd" [| (1.0, 2.0); (2.0, 4.0) |];
        series "mtf" [| (1.0, 3.0); (2.0, 5.0) |] ]
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: row1 :: _ ->
    Alcotest.(check string) "header" "x,bsd,mtf" header;
    Alcotest.(check bool) "first row starts with x" true
      (String.length row1 > 0 && row1.[0] = '1')
  | _ -> Alcotest.fail "too few lines");
  Alcotest.check_raises "mismatched grids rejected"
    (Invalid_argument "Csv.write_series: series x grids differ") (fun () ->
      ignore
        (Report.Csv.series_to_string
           [ series "a" [| (1.0, 2.0) |]; series "b" [| (9.0, 2.0) |] ]))

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                          *)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  n = 0 || go 0

let test_plot_render () =
  let rendered =
    Report.Ascii_plot.render ~title:"PCBs searched"
      [ series "bsd" [| (0.0, 1.0); (50.0, 25.0); (100.0, 50.0) |];
        series "sequent" [| (0.0, 1.0); (50.0, 2.0); (100.0, 3.0) |] ]
  in
  Alcotest.(check bool) "title shown" true (contains rendered "PCBs searched");
  Alcotest.(check bool) "legend: bsd" true (contains rendered "bsd");
  Alcotest.(check bool) "legend: sequent" true (contains rendered "sequent");
  Alcotest.(check bool) "multi-line" true
    (List.length (String.split_on_char '\n' rendered) > 5)

let test_plot_empty_placeholder () =
  let empty_input = Report.Ascii_plot.render [] in
  let empty_series = Report.Ascii_plot.render [ series "bsd" [||] ] in
  Alcotest.(check bool) "short placeholder for no series" true
    (String.length empty_input < 80);
  Alcotest.(check bool) "short placeholder for empty series" true
    (String.length empty_series < 80)

let test_plot_custom_size () =
  let rendered =
    Report.Ascii_plot.render
      ~config:{ Report.Ascii_plot.width = 20; height = 5 }
      [ series "s" [| (0.0, 0.0); (1.0, 1.0) |] ]
  in
  Alcotest.(check bool) "renders at small size" true
    (String.length rendered > 0)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let rendered =
    Report.Table.render
      ~columns:
        [ Report.Table.column ~align:Report.Table.Left "algorithm";
          Report.Table.column "mean" ]
      [ [ "bsd"; "24.9" ]; [ "sequent-19"; "3.0" ] ]
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
  in
  (match lines with
  | header :: _ :: bsd_row :: sequent_row :: _ ->
    Alcotest.(check bool) "left-aligned header" true
      (String.length header >= 9 && String.sub header 0 9 = "algorithm");
    Alcotest.(check bool) "left cell at left edge" true
      (String.sub bsd_row 0 3 = "bsd");
    Alcotest.(check bool) "right column right-aligned" true
      (let w = String.length sequent_row in
       String.sub sequent_row (w - 3) 3 = "3.0")
  | _ -> Alcotest.failf "unexpected layout:\n%s" rendered);
  Alcotest.(check bool) "widths consistent" true
    (match lines with
    | a :: rest -> List.for_all (fun l -> String.length l <= String.length a + 2) rest
    | [] -> false)

let test_table_short_rows_padded () =
  let rendered =
    Report.Table.render
      ~columns:[ Report.Table.column "a"; Report.Table.column "b" ]
      [ [ "1" ] ]
  in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_table_long_rows_raise () =
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.render: row wider than header")
    (fun () ->
      ignore
        (Report.Table.render
           ~columns:[ Report.Table.column "a" ]
           [ [ "1"; "2" ] ]))

let test_table_float_cell () =
  Alcotest.(check string) "default decimals" "24.90" (Report.Table.float_cell 24.9);
  Alcotest.(check string) "custom decimals" "25" (Report.Table.float_cell ~decimals:0 24.9);
  Alcotest.(check string) "nan prints dash" "-" (Report.Table.float_cell Float.nan)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "report"
    [ ( "csv",
        [ Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "write_rows" `Quick test_csv_write_rows;
          Alcotest.test_case "series" `Quick test_csv_series ] );
      ( "ascii-plot",
        [ Alcotest.test_case "render" `Quick test_plot_render;
          Alcotest.test_case "empty placeholder" `Quick
            test_plot_empty_placeholder;
          Alcotest.test_case "custom size" `Quick test_plot_custom_size ] );
      ( "table",
        [ Alcotest.test_case "render and align" `Quick test_table_render;
          Alcotest.test_case "short rows padded" `Quick
            test_table_short_rows_padded;
          Alcotest.test_case "long rows raise" `Quick
            test_table_long_rows_raise;
          Alcotest.test_case "float_cell" `Quick test_table_float_cell ] ) ]
