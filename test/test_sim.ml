(* Tests for the discrete-event simulator: event queue, engine,
   topology, metering and the four workloads. *)

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)

let test_queue_ordering () =
  let q = Sim.Event_queue.create () in
  List.iter
    (fun (t, v) -> Sim.Event_queue.add q ~time:t v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let popped = ref [] in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "z"; "a"; "b"; "c" ]
    (List.rev !popped)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  List.iter (fun v -> Sim.Event_queue.add q ~time:1.0 v) [ 1; 2; 3; 4; 5 ];
  let order = ref [] in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_queue_interleaved () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:5.0 "late";
  Sim.Event_queue.add q ~time:1.0 "early";
  (match Sim.Event_queue.pop q with
  | Some (t, v) ->
    Alcotest.(check string) "early first" "early" v;
    Alcotest.(check (float 1e-12)) "time" 1.0 t
  | None -> Alcotest.fail "empty");
  Sim.Event_queue.add q ~time:2.0 "middle";
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "middle next" "middle" v
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "one left" 1 (Sim.Event_queue.length q)

let test_queue_misc () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check bool) "empty" true (Sim.Event_queue.is_empty q);
  Alcotest.(check bool) "pop empty" true (Sim.Event_queue.pop q = None);
  Alcotest.(check bool) "peek empty" true (Sim.Event_queue.peek_time q = None);
  Alcotest.check_raises "NaN time" (Invalid_argument "Event_queue.add: NaN time")
    (fun () -> Sim.Event_queue.add q ~time:Float.nan ());
  Sim.Event_queue.add q ~time:1.0 ();
  Sim.Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Sim.Event_queue.is_empty q)

let prop_queue_sorted =
  QCheck.Test.make ~count:200 ~name:"pops are sorted by time"
    QCheck.(list_of_size (Gen.int_range 0 300) (float_range 0.0 1000.0))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> Sim.Event_queue.add q ~time:t ()) times;
      let rec check last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && check t
      in
      check Float.neg_infinity)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_runs_in_order () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule engine ~delay:2.0 (fun e ->
      log := ("b", Sim.Engine.now e) :: !log);
  Sim.Engine.schedule engine ~delay:1.0 (fun e ->
      log := ("a", Sim.Engine.now e) :: !log;
      (* Nested scheduling. *)
      Sim.Engine.schedule e ~delay:0.5 (fun e ->
          log := ("a2", Sim.Engine.now e) :: !log));
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "execution order" [ "a"; "a2"; "b" ]
    (List.rev_map fst !log);
  Alcotest.(check int) "events" 3 (Sim.Engine.events_processed engine)

let test_engine_until () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.Engine.schedule engine ~delay:t (fun _ -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.Engine.run ~until:2.0 engine;
  Alcotest.(check (list (float 1e-12))) "only <= until" [ 1.0; 2.0 ]
    (List.rev !fired);
  (* Resume picks up the rest. *)
  Sim.Engine.run ~until:10.0 engine;
  Alcotest.(check int) "all fired" 4 (List.length !fired)

let test_engine_max_events_and_stop () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    Sim.Engine.schedule e ~delay:1.0 tick
  in
  Sim.Engine.schedule engine ~delay:0.0 tick;
  Sim.Engine.run ~max_events:5 engine;
  Alcotest.(check int) "bounded" 5 !count;
  (* stop() from within a callback. *)
  let engine2 = Sim.Engine.create () in
  let count2 = ref 0 in
  let rec tick2 e =
    incr count2;
    if !count2 = 3 then Sim.Engine.stop e
    else Sim.Engine.schedule e ~delay:1.0 tick2
  in
  Sim.Engine.schedule engine2 ~delay:0.0 tick2;
  Sim.Engine.run engine2;
  Alcotest.(check int) "stopped" 3 !count2

let test_engine_validation () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or NaN delay") (fun () ->
      Sim.Engine.schedule engine ~delay:(-1.0) (fun _ -> ()));
  Sim.Engine.schedule engine ~delay:5.0 (fun _ -> ());
  Sim.Engine.run engine;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Sim.Engine.schedule_at engine ~time:1.0 (fun _ -> ()))

let test_engine_run_validation () =
  List.iter
    (fun (name, message, run) ->
      Alcotest.check_raises name (Invalid_argument message) (fun () ->
          run (Sim.Engine.create ())))
    [ ( "NaN until", "Engine.run: NaN until",
        fun e -> Sim.Engine.run ~until:Float.nan e );
      ( "negative until", "Engine.run: negative until",
        fun e -> Sim.Engine.run ~until:(-1.0) e );
      ( "zero max_events", "Engine.run: max_events <= 0",
        fun e -> Sim.Engine.run ~max_events:0 e );
      ( "negative max_events", "Engine.run: max_events <= 0",
        fun e -> Sim.Engine.run ~max_events:(-3) e ) ]

exception Boom

let test_engine_resumable_after_raise () =
  let engine = Sim.Engine.create () in
  let trace = ref [] in
  let note label e = trace := (label, Sim.Engine.now e) :: !trace in
  Sim.Engine.schedule engine ~delay:1.0 (note "a");
  Sim.Engine.schedule engine ~delay:2.0 (fun e ->
      note "boom" e;
      raise Boom);
  Sim.Engine.schedule engine ~delay:3.0 (note "c");
  (match Sim.Engine.run engine with
  | () -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  (* The faulting event is reflected in clock and count... *)
  Alcotest.(check (float 0.0)) "clock at fault" 2.0 (Sim.Engine.now engine);
  Alcotest.(check int) "fault counted" 2 (Sim.Engine.events_processed engine);
  (* ...and the rest of the agenda survives a later run. *)
  Sim.Engine.run engine;
  Alcotest.(check (float 0.0)) "resumed to the end" 3.0 (Sim.Engine.now engine);
  Alcotest.(check (list (pair string (float 0.0))))
    "every event fired once"
    [ ("a", 1.0); ("boom", 2.0); ("c", 3.0) ]
    (List.rev !trace)

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let test_topology_distinct_flows () =
  let flows = Sim.Topology.flows 5000 in
  let module FS = Set.Make (struct
    type t = Packet.Flow.t

    let compare = Packet.Flow.compare
  end) in
  let set = Array.fold_left (fun s f -> FS.add f s) FS.empty flows in
  Alcotest.(check int) "all distinct" 5000 (FS.cardinal set)

let test_topology_server_side () =
  let flow = Sim.Topology.flow_of_client 0 in
  Alcotest.(check int) "local port is server's" 8888
    flow.Packet.Flow.local.Packet.Flow.port;
  Alcotest.check_raises "range" (Invalid_argument "Topology.client: index out of range")
    (fun () -> ignore (Sim.Topology.client (-1)))

(* ------------------------------------------------------------------ *)
(* Meter                                                               *)

let test_meter_kind_separation () =
  let demux = Demux.Registry.create Demux.Registry.Bsd in
  let meter = Sim.Meter.create demux in
  let flows = Sim.Topology.flows 10 in
  Array.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) flows;
  Sim.Meter.start_measuring meter;
  Sim.Meter.lookup meter ~kind:Demux.Types.Data flows.(0);
  Sim.Meter.lookup meter ~kind:Demux.Types.Data flows.(1);
  Sim.Meter.lookup meter ~kind:Demux.Types.Pure_ack flows.(2);
  Alcotest.(check int) "entry count" 2
    (Numerics.Stats.count (Sim.Meter.entry_examined meter));
  Alcotest.(check int) "ack count" 1
    (Numerics.Stats.count (Sim.Meter.ack_examined meter))

let test_meter_warmup_reset () =
  let demux = Demux.Registry.create Demux.Registry.Bsd in
  let meter = Sim.Meter.create demux in
  let flows = Sim.Topology.flows 5 in
  Array.iter (fun f -> ignore (demux.Demux.Registry.insert f ())) flows;
  Sim.Meter.set_measuring meter false;
  Sim.Meter.lookup meter ~kind:Demux.Types.Data flows.(0);
  Alcotest.(check int) "warm-up not recorded" 0
    (Numerics.Stats.count (Sim.Meter.entry_examined meter));
  Sim.Meter.start_measuring meter;
  Sim.Meter.lookup meter ~kind:Demux.Types.Data flows.(0);
  Alcotest.(check int) "recorded after reset" 1
    (Numerics.Stats.count (Sim.Meter.entry_examined meter));
  (* Aggregate demux stats also reset at measurement start. *)
  let s = Demux.Lookup_stats.snapshot demux.Demux.Registry.stats in
  Alcotest.(check int) "aggregate reset" 1 s.Demux.Lookup_stats.lookups

let test_meter_unknown_flow_fails () =
  let demux = Demux.Registry.create Demux.Registry.Bsd in
  let meter = Sim.Meter.create demux in
  match Sim.Meter.lookup meter ~kind:Demux.Types.Data (Sim.Topology.flow_of_client 0) with
  | () -> Alcotest.fail "lookup of absent flow should fail"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

let small_params = Analysis.Tpca_params.v ~users:200 ()

let test_tpca_matches_analysis () =
  (* The headline cross-validation at a size that runs in ~1 s. *)
  let config = Sim.Tpca_workload.default_config ~duration:400.0 small_params in
  List.iter
    (fun (spec, predicted) ->
      let report = Sim.Tpca_workload.run config spec in
      let ratio = report.Sim.Report.overall_mean /. predicted in
      if ratio < 0.9 || ratio > 1.15 then
        Alcotest.failf "%s: predicted %.1f, simulated %.1f (ratio %.3f)"
          report.Sim.Report.algorithm predicted report.Sim.Report.overall_mean
          ratio)
    [ (Demux.Registry.Bsd, Analysis.Bsd_model.cost small_params);
      (Demux.Registry.Mtf, Analysis.Mtf_model.overall_cost small_params);
      ( Demux.Registry.Sr_cache,
        Analysis.Srcache_model.overall_cost small_params ) ]

let test_tpca_matches_analysis_across_r () =
  (* The R-dependence (Equation 6's whole point) must also reproduce:
     check MTF and Sequent at a slower server. *)
  List.iter
    (fun response_time ->
      let params = Analysis.Tpca_params.v ~users:200 ~response_time () in
      let config = Sim.Tpca_workload.default_config ~duration:400.0 params in
      List.iter
        (fun (spec, predicted) ->
          let report = Sim.Tpca_workload.run config spec in
          let ratio = report.Sim.Report.overall_mean /. predicted in
          if ratio < 0.85 || ratio > 1.2 then
            Alcotest.failf "%s at R=%g: predicted %.1f simulated %.1f"
              report.Sim.Report.algorithm response_time predicted
              report.Sim.Report.overall_mean)
        [ (Demux.Registry.Mtf, Analysis.Mtf_model.overall_cost params);
          ( Demux.Registry.Sequent
              { chains = 19; hasher = Hashing.Hashers.multiplicative },
            Analysis.Sequent_model.cost params ~chains:19 ) ])
    [ 0.5; 1.0 ]

let test_tpca_deterministic_per_seed () =
  let config = Sim.Tpca_workload.default_config ~duration:50.0 small_params in
  let a = Sim.Tpca_workload.run config Demux.Registry.Bsd in
  let b = Sim.Tpca_workload.run config Demux.Registry.Bsd in
  Alcotest.(check int) "same packets" a.Sim.Report.packets b.Sim.Report.packets;
  Alcotest.(check (float 1e-12)) "same mean" a.Sim.Report.overall_mean
    b.Sim.Report.overall_mean;
  let c =
    Sim.Tpca_workload.run { config with Sim.Tpca_workload.seed = 43 }
      Demux.Registry.Bsd
  in
  Alcotest.(check bool) "different seed differs" true
    (c.Sim.Report.overall_mean <> a.Sim.Report.overall_mean
    || c.Sim.Report.packets <> a.Sim.Report.packets)

let test_tpca_packet_balance () =
  (* Half the server's receptions are entries, half are acks (up to
     edge effects at the measurement boundary). *)
  let config = Sim.Tpca_workload.default_config ~duration:300.0 small_params in
  let report = Sim.Tpca_workload.run config Demux.Registry.Bsd in
  Alcotest.(check bool)
    (Printf.sprintf "entry %.1f and ack %.1f both populated"
       report.Sim.Report.entry_mean report.Sim.Report.ack_mean)
    true
    ((not (Float.is_nan report.Sim.Report.entry_mean))
    && not (Float.is_nan report.Sim.Report.ack_mean));
  (* Offered load: 20 txn/s * 2 packets * 300 s = 12,000 +- 10%. *)
  Alcotest.(check bool)
    (Printf.sprintf "packets %d near offered load" report.Sim.Report.packets)
    true
    (report.Sim.Report.packets > 10_000 && report.Sim.Report.packets < 14_000)

let test_tpca_validation_errors () =
  let config = Sim.Tpca_workload.default_config ~duration:1.0 small_params in
  Alcotest.check_raises "users" (Invalid_argument "Tpca_workload.run: users <= 0")
    (fun () ->
      ignore
        (Sim.Tpca_workload.run { config with Sim.Tpca_workload.users = 0 }
           Demux.Registry.Bsd));
  Alcotest.check_raises "duration"
    (Invalid_argument "Tpca_workload.run: duration <= 0") (fun () ->
      ignore
        (Sim.Tpca_workload.run { config with Sim.Tpca_workload.duration = 0.0 }
           Demux.Registry.Bsd))

let test_polling_mtf_degenerates () =
  let config = Sim.Polling_workload.default_config ~users:100 ~rounds:5 () in
  let report = Sim.Polling_workload.run config Demux.Registry.Mtf in
  (* Paper: entry scans the whole list. *)
  Alcotest.(check (float 0.6)) "entry = N" 100.0 report.Sim.Report.entry_mean

let test_trains_bsd_cache_shines () =
  let config = Sim.Trains_workload.default_config ~connections:32 ~trains:500 () in
  let report = Sim.Trains_workload.run config Demux.Registry.Bsd in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate %.2f > 0.8" report.Sim.Report.hit_rate)
    true
    (report.Sim.Report.hit_rate > 0.8);
  (* Singleton trains: hit rate collapses. *)
  let flat =
    { config with
      Sim.Trains_workload.train_length = Numerics.Distribution.deterministic 0.0 }
  in
  let report_flat = Sim.Trains_workload.run flat Demux.Registry.Bsd in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate %.3f < 0.15" report_flat.Sim.Report.hit_rate)
    true
    (report_flat.Sim.Report.hit_rate < 0.15)

let test_locality_zipf_helps_mtf () =
  (* Zipf + bursts: MTF keeps hot connections near the front, so it
     beats the uncached linear scan clearly. *)
  let config = Sim.Locality_workload.default_config ~connections:128 ~packets:20_000 () in
  let mtf = Sim.Locality_workload.run config Demux.Registry.Mtf in
  let linear = Sim.Locality_workload.run config Demux.Registry.Linear in
  Alcotest.(check bool)
    (Printf.sprintf "mtf %.1f < linear %.1f" mtf.Sim.Report.overall_mean
       linear.Sim.Report.overall_mean)
    true
    (mtf.Sim.Report.overall_mean < linear.Sim.Report.overall_mean *. 0.8)

let test_delayed_acks_footnote2 () =
  (* Paper footnote 2: eliminating the query's transport-level ack
     "will have no effect on the results at the database server" — for
     stateless-transmit algorithms it is bit-for-bit identical. *)
  let config = Sim.Tpca_workload.default_config ~duration:150.0 small_params in
  let delayed = { config with Sim.Tpca_workload.delayed_acks = true } in
  List.iter
    (fun spec ->
      let base = Sim.Tpca_workload.run config spec in
      let without_ack = Sim.Tpca_workload.run delayed spec in
      Alcotest.(check (float 1e-12))
        (Demux.Registry.spec_name spec)
        base.Sim.Report.overall_mean without_ack.Sim.Report.overall_mean)
    Demux.Registry.
      [ Bsd; Mtf;
        Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative } ];
  (* The send/receive cache is the exception: its transmit path is
     stateful, so removing the ack send changes (improves) it. *)
  let base = Sim.Tpca_workload.run config Demux.Registry.Sr_cache in
  let without_ack = Sim.Tpca_workload.run delayed Demux.Registry.Sr_cache in
  Alcotest.(check bool)
    (Printf.sprintf "sr-cache moves: %.1f vs %.1f"
       base.Sim.Report.overall_mean without_ack.Sim.Report.overall_mean)
    true
    (without_ack.Sim.Report.overall_mean < base.Sim.Report.overall_mean)

let test_chatty_hit_ratio_pitfall () =
  (* Paper Section 3.4: 3x the packets lifts the hit ratio toward 67%
     but the PCBs searched per *transaction* do not drop. *)
  let config = Sim.Tpca_workload.default_config ~duration:150.0 small_params in
  let chatty = { config with Sim.Tpca_workload.extra_query_packets = 2 } in
  let base = Sim.Tpca_workload.run config Demux.Registry.Bsd in
  let noisy = Sim.Tpca_workload.run chatty Demux.Registry.Bsd in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate jumps: %.4f -> %.4f" base.Sim.Report.hit_rate
       noisy.Sim.Report.hit_rate)
    true
    (noisy.Sim.Report.hit_rate > 0.4 && base.Sim.Report.hit_rate < 0.05);
  let per_txn_base = base.Sim.Report.overall_mean *. 2.0 in
  let per_txn_noisy = noisy.Sim.Report.overall_mean *. 4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "per-transaction work %.0f >= %.0f" per_txn_noisy
       (per_txn_base *. 0.95))
    true
    (per_txn_noisy >= per_txn_base *. 0.95)

let test_churn_steady_state () =
  let config = Sim.Churn_workload.default_config ~arrival_rate:40.0 () in
  (* Little's law: 40/s * 8 packets * 50 ms = 16 connections. *)
  Alcotest.(check (float 0.01)) "population" 16.0
    (Sim.Churn_workload.steady_state_population config);
  let report = Sim.Churn_workload.run config Demux.Registry.Bsd in
  Alcotest.(check string) "workload name" "churn" report.Sim.Report.workload;
  (* Mean cost is bounded by the live population's scale, far below
     the total number of connections ever created. *)
  Alcotest.(check bool)
    (Printf.sprintf "cost %.1f within population scale" report.Sim.Report.overall_mean)
    true
    (report.Sim.Report.overall_mean > 1.0 && report.Sim.Report.overall_mean < 32.0);
  (* Offered load ~ 40 conn/s * 8 packets * 60 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "packets %d near offered load" report.Sim.Report.packets)
    true
    (report.Sim.Report.packets > 15_000 && report.Sim.Report.packets < 24_000)

let test_churn_no_leak () =
  (* After a run, every departed connection must have been removed:
     inserts - removes equals the (small) still-live population. *)
  let config = Sim.Churn_workload.default_config ~arrival_rate:30.0 ~duration:30.0 () in
  let report = Sim.Churn_workload.run config Demux.Registry.Sr_cache in
  ignore report;
  (* Run again against a resizing hash and check the same through the
     metered report's hit-rate sanity (no exception = no leak-induced
     duplicate insert). *)
  let report = Sim.Churn_workload.run config Demux.Registry.Resizing_hash in
  Alcotest.(check bool) "ran" true (report.Sim.Report.packets > 0)

let test_trace_replay_roundtrip () =
  (* Build a small synthetic capture and replay it. *)
  let records =
    List.concat_map
      (fun i ->
        let src = Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 10 0 0 (i + 1)) (4000 + i) in
        let dst = Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888 in
        [ Packet.Segment.make ~src ~dst ~flags:Packet.Tcp_header.flag_psh_ack
            ~payload:(Printf.sprintf "q%d" i) ();
          Packet.Segment.make ~src ~dst ~flags:Packet.Tcp_header.flag_ack () ])
      (List.init 10 Fun.id)
    |> List.mapi (fun i segment ->
           { Packet.Pcap.time = float_of_int i *. 0.001;
             data = Packet.Segment.to_bytes segment })
  in
  let result = Sim.Trace_replay.replay_records records Demux.Registry.Bsd in
  Alcotest.(check int) "total" 20 result.Sim.Trace_replay.packets_total;
  Alcotest.(check int) "replayed" 20 result.Sim.Trace_replay.packets_replayed;
  Alcotest.(check int) "skipped" 0 result.Sim.Trace_replay.packets_skipped;
  Alcotest.(check int) "flows" 10 result.Sim.Trace_replay.flows_seen;
  Alcotest.(check bool) "cost positive" true
    (result.Sim.Trace_replay.report.Sim.Report.overall_mean > 0.0)

let test_trace_replay_skips_garbage () =
  let good =
    Packet.Segment.make
      ~src:(Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 10 0 0 1) 4000)
      ~dst:(Packet.Flow.endpoint (Packet.Ipv4.addr_of_octets 192 168 1 1) 8888)
      ~flags:Packet.Tcp_header.flag_syn ()
  in
  let records =
    [ { Packet.Pcap.time = 0.0; data = Bytes.make 15 'x' };
      { Packet.Pcap.time = 0.1; data = Packet.Segment.to_bytes good } ]
  in
  let result = Sim.Trace_replay.replay_records records Demux.Registry.Mtf in
  Alcotest.(check int) "skipped" 1 result.Sim.Trace_replay.packets_skipped;
  Alcotest.(check int) "replayed" 1 result.Sim.Trace_replay.packets_replayed

let test_trace_replay_missing_file () =
  match Sim.Trace_replay.replay_file "/no/such/file.pcap" Demux.Registry.Bsd with
  | Ok _ -> Alcotest.fail "opened a missing file"
  | Error _ -> ()

let test_validate_rows () =
  let params = Analysis.Tpca_params.v ~users:100 () in
  let config = Sim.Tpca_workload.default_config ~duration:100.0 params in
  let rows =
    Sim.Validate.compare ~config params
      Demux.Registry.[ Bsd; Conn_id { capacity = 256 } ]
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.3f sane" r.Sim.Validate.algorithm
           r.Sim.Validate.ratio)
        true
        (r.Sim.Validate.ratio > 0.8 && r.Sim.Validate.ratio < 1.25))
    rows

let test_predicted_cost_coverage () =
  let p = small_params in
  let has spec = Sim.Validate.predicted_cost p spec <> None in
  Alcotest.(check bool) "bsd" true (has Demux.Registry.Bsd);
  Alcotest.(check bool) "linear" true (has Demux.Registry.Linear);
  Alcotest.(check bool) "mtf" true (has Demux.Registry.Mtf);
  Alcotest.(check bool) "sr" true (has Demux.Registry.Sr_cache);
  Alcotest.(check bool) "conn-id" true (has (Demux.Registry.Conn_id { capacity = 1 }));
  Alcotest.(check bool) "resizing unmodelled" false
    (has Demux.Registry.Resizing_hash)

(* ------------------------------------------------------------------ *)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_queue_sorted ]

(* ------------------------------------------------------------------ *)
(* Adversarial workloads                                               *)

let sequent_spec =
  Demux.Registry.Sequent { chains = 19; hasher = Hashing.Hashers.multiplicative }

let guarded_spec ~max_chain ~max_total =
  Demux.Registry.Guarded { spec = sequent_spec; max_chain; max_total }

let test_attack_deterministic () =
  let specs = [ sequent_spec; guarded_spec ~max_chain:8 ~max_total:64 ] in
  let run () =
    Sim.Attack_workload.run_all (Sim.Attack_workload.smoke_config ~seed:11 ())
      specs
  in
  let first = run () and second = run () in
  Alcotest.(check int) "same shape" (List.length first) (List.length second);
  List.iter2
    (fun (a : Sim.Attack_workload.result) b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s replays identically" a.Sim.Attack_workload.scenario
           a.Sim.Attack_workload.algorithm)
        true (a = b))
    first second

let test_attack_collision_degrades_to_linear () =
  (* The whole point of the flood: with every flow in one chain, the
     hashed algorithm's mean lookup cost collapses to the linear
     list's (same flow count, same lookup sequence). *)
  let config = Sim.Attack_workload.smoke_config () in
  let hashed = Sim.Attack_workload.run_collision_flood config sequent_spec in
  let linear =
    Sim.Attack_workload.run_collision_flood config Demux.Registry.Linear
  in
  let deviation =
    abs_float
      (hashed.Sim.Attack_workload.mean_examined
      -. linear.Sim.Attack_workload.mean_examined)
    /. linear.Sim.Attack_workload.mean_examined
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f within 10%% of linear's %.2f"
       hashed.Sim.Attack_workload.mean_examined
       linear.Sim.Attack_workload.mean_examined)
    true (deviation < 0.10)

let test_attack_guard_caps_collision_flood () =
  let config = Sim.Attack_workload.smoke_config () in
  let max_chain = 8 in
  let result =
    Sim.Attack_workload.run_collision_flood config
      (guarded_spec ~max_chain ~max_total:2048)
  in
  Alcotest.(check int) "population capped at the chain bound" max_chain
    result.Sim.Attack_workload.table_length;
  Alcotest.(check int) "overflow shed as evictions"
    (config.Sim.Attack_workload.flood_flows - max_chain)
    result.Sim.Attack_workload.evictions;
  Alcotest.(check bool) "bounded worst case" true
    (result.Sim.Attack_workload.max_examined <= max_chain + 1)

let test_attack_guard_bounds_syn_flood () =
  let config = Sim.Attack_workload.smoke_config () in
  let unguarded = Sim.Attack_workload.run_syn_flood config sequent_spec in
  let guarded =
    Sim.Attack_workload.run_syn_flood config
      (guarded_spec ~max_chain:8 ~max_total:100)
  in
  Alcotest.(check int) "unguarded table bloats to every spoofed SYN"
    config.Sim.Attack_workload.syn_attempts
    unguarded.Sim.Attack_workload.table_length;
  Alcotest.(check bool) "guarded table bounded" true
    (guarded.Sim.Attack_workload.table_length <= 100);
  Alcotest.(check bool) "shedding reported" true
    (guarded.Sim.Attack_workload.evictions
     >= config.Sim.Attack_workload.syn_attempts - 100)

let test_attack_storm_attributes_drops () =
  let config = Sim.Attack_workload.smoke_config () in
  let result = Sim.Attack_workload.run_malformed_storm config sequent_spec in
  Alcotest.(check bool) "some datagrams shed" true
    (result.Sim.Attack_workload.drops > 0);
  Alcotest.(check bool) "parse errors attributed" true
    (result.Sim.Attack_workload.parse_errors > 0);
  Alcotest.(check bool) "parse errors are a subset of drops" true
    (result.Sim.Attack_workload.parse_errors
    <= result.Sim.Attack_workload.drops)

let () =
  Alcotest.run "sim"
    [ ( "event-queue",
        [ Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
          Alcotest.test_case "misc" `Quick test_queue_misc ] );
      ( "engine",
        [ Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "until + resume" `Quick test_engine_until;
          Alcotest.test_case "max events and stop" `Quick
            test_engine_max_events_and_stop;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          Alcotest.test_case "run validation" `Quick test_engine_run_validation;
          Alcotest.test_case "resumable after raise" `Quick
            test_engine_resumable_after_raise ] );
      ( "attack",
        [ Alcotest.test_case "deterministic per seed" `Quick
            test_attack_deterministic;
          Alcotest.test_case "collision flood degrades to linear" `Quick
            test_attack_collision_degrades_to_linear;
          Alcotest.test_case "guard caps collision flood" `Quick
            test_attack_guard_caps_collision_flood;
          Alcotest.test_case "guard bounds SYN flood" `Quick
            test_attack_guard_bounds_syn_flood;
          Alcotest.test_case "storm attributes drops" `Quick
            test_attack_storm_attributes_drops ] );
      ( "topology",
        [ Alcotest.test_case "distinct flows" `Quick test_topology_distinct_flows;
          Alcotest.test_case "server side" `Quick test_topology_server_side ] );
      ( "meter",
        [ Alcotest.test_case "kind separation" `Quick test_meter_kind_separation;
          Alcotest.test_case "warm-up reset" `Quick test_meter_warmup_reset;
          Alcotest.test_case "unknown flow" `Quick test_meter_unknown_flow_fails ] );
      ( "tpca",
        [ Alcotest.test_case "matches analysis" `Slow test_tpca_matches_analysis;
          Alcotest.test_case "matches analysis across R" `Slow
            test_tpca_matches_analysis_across_r;
          Alcotest.test_case "deterministic per seed" `Quick
            test_tpca_deterministic_per_seed;
          Alcotest.test_case "packet balance" `Slow test_tpca_packet_balance;
          Alcotest.test_case "validation" `Quick test_tpca_validation_errors ] );
      ( "other-workloads",
        [ Alcotest.test_case "polling degrades MTF" `Quick
            test_polling_mtf_degenerates;
          Alcotest.test_case "trains reward BSD" `Quick test_trains_bsd_cache_shines;
          Alcotest.test_case "locality rewards MTF" `Quick
            test_locality_zipf_helps_mtf;
          Alcotest.test_case "delayed acks (footnote 2)" `Slow
            test_delayed_acks_footnote2;
          Alcotest.test_case "chatty hit-ratio pitfall" `Slow
            test_chatty_hit_ratio_pitfall;
          Alcotest.test_case "churn steady state" `Quick test_churn_steady_state;
          Alcotest.test_case "churn no leak" `Quick test_churn_no_leak ] );
      ( "mixed",
        [ Alcotest.test_case "sequent wins both classes" `Slow
            (fun () ->
              let config =
                Sim.Mixed_workload.default_config ~oltp_users:400
                  ~bulk_streams:2 ()
              in
              let bsd = Sim.Mixed_workload.run config Demux.Registry.Bsd in
              let sequent =
                Sim.Mixed_workload.run config
                  (Demux.Registry.Sequent
                     { chains = 19; hasher = Hashing.Hashers.multiplicative })
              in
              (* OLTP: order-of-magnitude win. *)
              Alcotest.(check bool)
                (Printf.sprintf "oltp %.1f << %.1f"
                   sequent.Sim.Mixed_workload.oltp_mean
                   bsd.Sim.Mixed_workload.oltp_mean)
                true
                (sequent.Sim.Mixed_workload.oltp_mean *. 5.0
                < bsd.Sim.Mixed_workload.oltp_mean);
              (* Bulk: both fine; sequent at least as good. *)
              Alcotest.(check bool)
                (Printf.sprintf "bulk %.2f <= %.2f"
                   sequent.Sim.Mixed_workload.bulk_mean
                   bsd.Sim.Mixed_workload.bulk_mean)
                true
                (sequent.Sim.Mixed_workload.bulk_mean
                <= bsd.Sim.Mixed_workload.bulk_mean +. 0.5);
              (* The two classes were actually both measured. *)
              Alcotest.(check bool) "classes populated" true
                ((not (Float.is_nan bsd.Sim.Mixed_workload.oltp_mean))
                && not (Float.is_nan bsd.Sim.Mixed_workload.bulk_mean)));
          Alcotest.test_case "validation" `Quick (fun () ->
              let config = Sim.Mixed_workload.default_config () in
              Alcotest.check_raises "no users"
                (Invalid_argument "Mixed_workload.run: no OLTP users")
                (fun () ->
                  ignore
                    (Sim.Mixed_workload.run
                       { config with Sim.Mixed_workload.oltp_users = 0 }
                       Demux.Registry.Bsd))) ] );
      ( "trace-replay",
        [ Alcotest.test_case "roundtrip" `Quick test_trace_replay_roundtrip;
          Alcotest.test_case "skips garbage" `Quick test_trace_replay_skips_garbage;
          Alcotest.test_case "missing file" `Quick test_trace_replay_missing_file ] );
      ( "validate",
        [ Alcotest.test_case "rows" `Slow test_validate_rows;
          Alcotest.test_case "model coverage" `Quick test_predicted_cost_coverage ] );
      ("properties", qcheck_cases) ]
