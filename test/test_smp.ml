(* Cross-core lockstep tests for the shared-nothing per-core pipeline
   (Parallel.Smp): an N-domain run over a sharded segment trace must
   reproduce a single-domain run exactly — final connection states,
   drop counters and merged lookup statistics — including runs where
   accepted connections migrate off the listener core mid-trace. *)

let server = Sim.Topology.server

let workload ?(clients = 48) ?(requests = 5) ?(close_after = false)
    ?(interleave = Sim.Segment_workload.Shuffled) () =
  Sim.Segment_workload.generate
    (Sim.Segment_workload.config ~clients ~requests_per_client:requests
       ~close_after ~interleave ())

let smp ?ring_capacity ?demux ?steering ?migrate ?migrate_target ?pressure
    ?on_pressure ?stall ?stages domains trace =
  Parallel.Smp.run
    (Parallel.Smp.config ?ring_capacity ?demux ?steering ?migrate
       ?migrate_target ?pressure ?on_pressure ?stall ?stages ~domains
       ~local_addr:server.Packet.Flow.addr ())
    trace.Sim.Segment_workload.datagrams

let check_no_violations label r =
  Alcotest.(check (list string)) (label ^ ": conservation") []
    (Parallel.Smp.violations r)

let summaries (r : Parallel.Smp.result) =
  List.map
    (fun (c : Parallel.Smp.conn_summary) ->
      ( Packet.Flow.to_string c.flow,
        Tcpcore.State.to_string c.state,
        c.bytes_in, c.bytes_out,
        Int32.to_int c.snd_nxt, Int32.to_int c.rcv_nxt,
        Int32.to_int c.snd_una ))
    r.Parallel.Smp.connections

let conn_testable =
  Alcotest.(list (pair (pair string string) (pair (pair int int) (pair (pair int int) int))))

let flat r =
  List.map
    (fun (a, b, c, d, e, f, g) -> ((a, b), ((c, d), ((e, f), g))))
    (summaries r)

let check_lockstep label single multi =
  Alcotest.check conn_testable (label ^ ": connection states") (flat single)
    (flat multi);
  Alcotest.(check (list (pair string int)))
    (label ^ ": merged drop counters")
    single.Parallel.Smp.merged_drops multi.Parallel.Smp.merged_drops;
  Alcotest.(check bool)
    (label ^ ": merged lookup stats")
    true
    (single.Parallel.Smp.merged_stats = multi.Parallel.Smp.merged_stats);
  check_no_violations label single;
  check_no_violations label multi

(* ------------------------------------------------------------------ *)
(* Lockstep without migration                                          *)

let test_lockstep_chain_affine () =
  (* Chain-affine steering keeps every Sequent chain wholly on one
     core, so even the content-dependent examined counts must agree
     exactly with the single-domain run. *)
  let trace = workload () in
  let single = smp 1 trace and multi = smp 4 trace in
  check_lockstep "chain-affine d1 vs d4" single multi;
  Alcotest.(check int)
    "every flow established" trace.Sim.Segment_workload.syns
    (List.length multi.Parallel.Smp.connections);
  List.iter
    (fun (c : Parallel.Smp.conn_summary) ->
      Alcotest.(check string)
        "established" "ESTABLISHED"
        (Tcpcore.State.to_string c.state);
      Alcotest.(check int)
        "bytes conserved" trace.Sim.Segment_workload.payload_bytes_per_flow
        c.bytes_in)
    multi.Parallel.Smp.connections;
  (* More than one domain actually participated. *)
  let active =
    Array.fold_left
      (fun n (d : Parallel.Smp.domain_result) ->
        if d.processed > 0 then n + 1 else n)
      0 multi.Parallel.Smp.per_domain
  in
  Alcotest.(check bool) "work spread across domains" true (active >= 3)

let test_lockstep_close_after () =
  (* Client FINs ride the trace: every connection must end Close_wait
     on every sharding. *)
  let trace = workload ~clients:24 ~requests:3 ~close_after:true () in
  let single = smp 1 trace and multi = smp 3 trace in
  check_lockstep "close d1 vs d3" single multi;
  List.iter
    (fun (c : Parallel.Smp.conn_summary) ->
      Alcotest.(check string)
        "close-wait" "CLOSE-WAIT"
        (Tcpcore.State.to_string c.state))
    multi.Parallel.Smp.connections

(* ------------------------------------------------------------------ *)
(* Lockstep with flow migration                                        *)

let conn_id = Demux.Registry.Conn_id { capacity = 4096 }

let test_lockstep_migrate () =
  (* All traffic lands on the listener core first; completed
     handshakes migrate to domains 1..N-1.  The single-domain run
     performs the same extract+adopt as a self-handoff, so table op
     counts and lookup stats still match exactly. *)
  let trace =
    workload ~clients:36 ~requests:5
      ~interleave:Sim.Segment_workload.Round_robin ()
  in
  let single = smp ~demux:conn_id ~migrate:true 1 trace in
  let multi = smp ~demux:conn_id ~migrate:true 3 trace in
  check_lockstep "migrate d1 vs d3" single multi;
  Alcotest.(check int) "d1: every handoff is a self-handoff" 36
    single.Parallel.Smp.self_handoffs;
  Alcotest.(check int) "d1: no cross-core handoffs" 0
    single.Parallel.Smp.handoffs;
  Alcotest.(check int) "d3: every flow migrated" 36
    multi.Parallel.Smp.handoffs;
  Alcotest.(check int) "d3: listener core retains nothing" 0
    multi.Parallel.Smp.per_domain.(0).Parallel.Smp.connections;
  Alcotest.(check int) "d3: adoptions match handoffs" 36
    (multi.Parallel.Smp.per_domain.(1).Parallel.Smp.adopted
    + multi.Parallel.Smp.per_domain.(2).Parallel.Smp.adopted);
  Alcotest.(check bool) "d3: both adopting cores used" true
    (multi.Parallel.Smp.per_domain.(1).Parallel.Smp.adopted > 0
    && multi.Parallel.Smp.per_domain.(2).Parallel.Smp.adopted > 0)

let test_migrate_shuffled_conservation () =
  (* A seeded random interleave maximizes stragglers: data segments
     race the handshake-completing ACK into ring 0 and must be
     forwarded, never lost or double-processed. *)
  let trace =
    workload ~clients:40 ~requests:6 ~close_after:true
      ~interleave:Sim.Segment_workload.Shuffled ()
  in
  let single = smp ~demux:conn_id ~migrate:true 1 trace in
  let multi = smp ~demux:conn_id ~migrate:true 4 trace in
  check_lockstep "shuffled migrate d1 vs d4" single multi;
  let m = multi.Parallel.Smp.per_domain in
  Array.iter
    (fun (d : Parallel.Smp.domain_result) ->
      Alcotest.(check int)
        (Printf.sprintf "d%d: no unclassified datagrams" d.index)
        0 d.unclassified;
      Alcotest.(check int)
        (Printf.sprintf "d%d: no stranded buffers" d.index)
        0 d.leftover)
    m;
  Alcotest.(check int) "handoff accounting exact" 40
    multi.Parallel.Smp.flushes

let test_migrate_fixed_target () =
  (* Pinning the target puts every accepted flow on one core. *)
  let trace = workload ~clients:12 ~requests:2 () in
  let r = smp ~demux:conn_id ~migrate:true ~migrate_target:2 3 trace in
  check_no_violations "fixed target" r;
  Alcotest.(check int) "all adopted by domain 2" 12
    r.Parallel.Smp.per_domain.(2).Parallel.Smp.adopted;
  Alcotest.(check int) "domain 2 owns every connection" 12
    r.Parallel.Smp.per_domain.(2).Parallel.Smp.connections

let test_migrate_corpus_oracle () =
  (* The pinned migration trace: corpus/smp-migrate.prog lowered to
     wire segments (Check.Smp_trace) and replayed through the full
     migrating pipeline.  The oracle is exact handoff conservation —
     offered = processed-at-old + forwarded + processed-at-new, no
     datagram lost or double-processed — plus per-flow final states:
     every Removed flow must be parked in TIME-WAIT on its adoptive
     core, and the retransmitted-FIN probes must not resurrect it. *)
  let prog =
    match Check.Op.load "corpus/smp-migrate.prog" with
    | Ok p -> p
    | Error e -> Alcotest.failf "corpus load: %s" e
  in
  let low =
    match Check.Smp_trace.lower prog with
    | Ok l -> l
    | Error e -> Alcotest.failf "lowering: %s" e
  in
  let run domains =
    Parallel.Smp.run
      (Parallel.Smp.config ~demux:conn_id ~migrate:true
         ~on_data:Check.Smp_trace.close_on_marker ~domains
         ~local_addr:server.Packet.Flow.addr ())
      low.Check.Smp_trace.datagrams
  in
  let single = run 1 and multi = run 3 in
  check_lockstep "corpus d1 vs d3" single multi;
  Alcotest.(check int) "every datagram accounted"
    (Array.length low.Check.Smp_trace.datagrams)
    multi.Parallel.Smp.total;
  Alcotest.(check int) "exactly one connection per opened flow"
    low.Check.Smp_trace.opened
    (List.length multi.Parallel.Smp.connections);
  Alcotest.(check int) "every accepted flow handed off"
    low.Check.Smp_trace.opened multi.Parallel.Smp.handoffs;
  List.iter
    (fun (e : Check.Smp_trace.expectation) ->
      match
        List.find_opt
          (fun (c : Parallel.Smp.conn_summary) ->
            Packet.Flow.equal c.flow e.flow)
          multi.Parallel.Smp.connections
      with
      | None ->
        Alcotest.failf "flow %s has no connection"
          (Packet.Flow.to_string e.flow)
      | Some c ->
        Alcotest.(check string)
          (Packet.Flow.to_string e.flow ^ ": final state")
          (Tcpcore.State.to_string e.Check.Smp_trace.state)
          (Tcpcore.State.to_string c.state);
        Alcotest.(check int)
          (Packet.Flow.to_string e.flow ^ ": bytes delivered")
          e.Check.Smp_trace.bytes_in c.bytes_in)
    low.Check.Smp_trace.expectations;
  let time_waits =
    List.length
      (List.filter
         (fun (c : Parallel.Smp.conn_summary) ->
           Tcpcore.State.equal c.state Tcpcore.State.Time_wait)
         multi.Parallel.Smp.connections)
  in
  Alcotest.(check int) "no TIME-WAIT resurrection"
    low.Check.Smp_trace.closed time_waits;
  Alcotest.(check bool) "resurrection probes actually fired" true
    (low.Check.Smp_trace.probes > 0)

(* ------------------------------------------------------------------ *)
(* Pressure under the SMP pipeline                                     *)

let test_pressure_forced_local_shed () =
  (* Forcing one domain's controller to Shed_new_flows must refuse
     exactly that domain's SYNs and leave siblings untouched: the
     controllers are per-domain, nothing is shared. *)
  let trace = workload ~clients:30 ~requests:2 () in
  let r =
    smp
      ~pressure:(Parallel.Pressure.config ())
      ~on_pressure:(fun cs ->
        Parallel.Pressure.force cs.(1) Parallel.Pressure.Shed_new_flows)
      3 trace
  in
  check_no_violations "forced shed" r;
  let d0 = r.Parallel.Smp.per_domain.(0)
  and d1 = r.Parallel.Smp.per_domain.(1)
  and d2 = r.Parallel.Smp.per_domain.(2) in
  let shed (d : Parallel.Smp.domain_result) =
    match List.assoc_opt "overload-shed-new-flow" d.drops with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "stalled domain sheds its SYNs" true (shed d1 > 0);
  Alcotest.(check int) "domain 0 sheds nothing" 0 (shed d0);
  Alcotest.(check int) "domain 2 sheds nothing" 0 (shed d2);
  Alcotest.(check int) "no connections on the degraded domain" 0
    d1.Parallel.Smp.connections;
  Alcotest.(check int) "siblings keep full service" 30
    (d0.Parallel.Smp.connections + d1.Parallel.Smp.connections
    + d2.Parallel.Smp.connections + shed d1)

let test_pressure_forced_reject () =
  (* Reject refuses a domain's datagrams at the dispatcher; the ledger
     must attribute every one of them. *)
  let trace = workload ~clients:30 ~requests:2 () in
  let r =
    smp
      ~pressure:(Parallel.Pressure.config ())
      ~on_pressure:(fun cs ->
        Parallel.Pressure.force cs.(2) Parallel.Pressure.Reject)
      3 trace
  in
  check_no_violations "forced reject" r;
  let d2 = r.Parallel.Smp.per_domain.(2) in
  Alcotest.(check bool) "datagrams were refused" true
    (d2.Parallel.Smp.rejected > 0);
  Alcotest.(check int) "nothing reached the refused ring" 0
    d2.Parallel.Smp.steered;
  Alcotest.(check int) "pressure ledger matches dispatcher ledger"
    d2.Parallel.Smp.rejected
    (match List.assoc_opt "reject" d2.Parallel.Smp.pressure_counters with
    | Some n -> n
    | None -> -1)

let test_pressure_organic_stall () =
  (* A genuinely slow core: its ring stays hot, its controller trips
     Shed_new_flows on its own observations, and the ledger still
     reconciles exactly. *)
  let trace =
    workload ~clients:45 ~requests:4
      ~interleave:Sim.Segment_workload.Round_robin ()
  in
  let r =
    smp ~ring_capacity:16
      ~pressure:
        (Parallel.Pressure.config ~ring_high_pct:75 ~ring_low_pct:25 ~trip:4
           ~hold:1000 ())
      ~stall:(1, 400_000) 3 trace
  in
  check_no_violations "organic stall" r;
  let d1 = r.Parallel.Smp.per_domain.(1) in
  let entered tier (d : Parallel.Smp.domain_result) =
    match List.assoc_opt tier d.Parallel.Smp.tier_transitions with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "stalled domain tripped" true
    (entered "shed-new-flows" d1 > 0);
  Array.iter
    (fun (d : Parallel.Smp.domain_result) ->
      Alcotest.(check int)
        (Printf.sprintf "d%d: dispatcher drops = pressure drops" d.index)
        d.Parallel.Smp.dropped_full
        (match List.assoc_opt "drop-batches" d.Parallel.Smp.pressure_counters with
        | Some n -> n
        | None -> -1);
      Alcotest.(check int)
        (Printf.sprintf "d%d: dispatcher rejects = pressure rejects" d.index)
        d.Parallel.Smp.rejected
        (match List.assoc_opt "reject" d.Parallel.Smp.pressure_counters with
        | Some n -> n
        | None -> -1))
    r.Parallel.Smp.per_domain

(* ------------------------------------------------------------------ *)
(* Stage instrumentation                                               *)

let test_stage_breakdown () =
  let trace = workload ~clients:20 ~requests:3 () in
  let r = smp ~stages:true 2 trace in
  check_no_violations "stages" r;
  let total = trace.Sim.Segment_workload.datagrams |> Array.length in
  let stage name =
    match List.assoc_opt name r.Parallel.Smp.stages with
    | Some h -> h
    | None -> Alcotest.failf "missing stage %s" name
  in
  Alcotest.(check int) "every datagram steered" total
    (Obs.Histogram.count (stage "steer"));
  Alcotest.(check int) "every datagram enqueued" total
    (Obs.Histogram.count (stage "enqueue"));
  Alcotest.(check int) "every datagram parsed" total
    (Obs.Histogram.count (stage "parse"));
  Alcotest.(check int) "every segment demultiplexed" total
    (Obs.Histogram.count (stage "demux"));
  Alcotest.(check int) "every segment ran the state machine" total
    (Obs.Histogram.count (stage "state"));
  (* An un-instrumented run records nothing. *)
  let bare = smp 2 trace in
  Alcotest.(check int) "stages off by default" 0
    (List.length bare.Parallel.Smp.stages)

let () =
  Alcotest.run "smp"
    [ ( "lockstep",
        [ Alcotest.test_case "chain-affine d1 = d4" `Quick
            test_lockstep_chain_affine;
          Alcotest.test_case "client FINs d1 = d3" `Quick
            test_lockstep_close_after ] );
      ( "migration",
        [ Alcotest.test_case "migrate d1 = d3" `Quick test_lockstep_migrate;
          Alcotest.test_case "shuffled stragglers conserved" `Quick
            test_migrate_shuffled_conservation;
          Alcotest.test_case "fixed target" `Quick test_migrate_fixed_target;
          Alcotest.test_case "pinned corpus oracle" `Quick
            test_migrate_corpus_oracle ] );
      ( "pressure",
        [ Alcotest.test_case "forced shed is local" `Quick
            test_pressure_forced_local_shed;
          Alcotest.test_case "forced reject ledger" `Quick
            test_pressure_forced_reject;
          Alcotest.test_case "organic stall trips locally" `Quick
            test_pressure_organic_stall ] );
      ( "stages",
        [ Alcotest.test_case "per-stage histograms" `Quick
            test_stage_breakdown ] ) ]
