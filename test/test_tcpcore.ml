(* Tests for the TCP substrate: the RFC 793 state machine, the
   two-level connection table, and the segment-processing stack. *)

let addr = Packet.Ipv4.addr_of_octets
let server_addr = addr 192 168 1 1
let client_addr = addr 10 0 0 1
let server_ep = Packet.Flow.endpoint server_addr 8888
let client_ep port = Packet.Flow.endpoint client_addr port

(* ------------------------------------------------------------------ *)
(* State machine                                                       *)

let state = Alcotest.testable Tcpcore.State.pp Tcpcore.State.equal

let check_transition from event expected =
  Alcotest.(check (option state))
    (Format.asprintf "%a --%a-->" Tcpcore.State.pp from Tcpcore.State.pp_event
       event)
    expected
    (Tcpcore.State.transition from event)

let test_three_way_handshake_server () =
  check_transition Tcpcore.State.Closed Tcpcore.State.Passive_open
    (Some Tcpcore.State.Listen);
  check_transition Tcpcore.State.Listen Tcpcore.State.Rcv_syn
    (Some Tcpcore.State.Syn_received);
  check_transition Tcpcore.State.Syn_received Tcpcore.State.Rcv_ack
    (Some Tcpcore.State.Established)

let test_three_way_handshake_client () =
  check_transition Tcpcore.State.Closed Tcpcore.State.Active_open
    (Some Tcpcore.State.Syn_sent);
  check_transition Tcpcore.State.Syn_sent Tcpcore.State.Rcv_syn_ack
    (Some Tcpcore.State.Established)

let test_simultaneous_open () =
  check_transition Tcpcore.State.Syn_sent Tcpcore.State.Rcv_syn
    (Some Tcpcore.State.Syn_received)

let test_active_close_path () =
  check_transition Tcpcore.State.Established Tcpcore.State.Close
    (Some Tcpcore.State.Fin_wait_1);
  check_transition Tcpcore.State.Fin_wait_1 Tcpcore.State.Rcv_ack
    (Some Tcpcore.State.Fin_wait_2);
  check_transition Tcpcore.State.Fin_wait_2 Tcpcore.State.Rcv_fin
    (Some Tcpcore.State.Time_wait);
  check_transition Tcpcore.State.Time_wait Tcpcore.State.Time_wait_expired
    (Some Tcpcore.State.Closed)

let test_passive_close_path () =
  check_transition Tcpcore.State.Established Tcpcore.State.Rcv_fin
    (Some Tcpcore.State.Close_wait);
  check_transition Tcpcore.State.Close_wait Tcpcore.State.Close
    (Some Tcpcore.State.Last_ack);
  check_transition Tcpcore.State.Last_ack Tcpcore.State.Rcv_ack
    (Some Tcpcore.State.Closed)

let test_simultaneous_close () =
  check_transition Tcpcore.State.Fin_wait_1 Tcpcore.State.Rcv_fin
    (Some Tcpcore.State.Closing);
  check_transition Tcpcore.State.Closing Tcpcore.State.Rcv_ack
    (Some Tcpcore.State.Time_wait);
  check_transition Tcpcore.State.Fin_wait_1 Tcpcore.State.Rcv_fin_ack
    (Some Tcpcore.State.Time_wait)

let test_rst_tears_down () =
  List.iter
    (fun s ->
      if not (Tcpcore.State.equal s Tcpcore.State.Closed) then
        check_transition s Tcpcore.State.Rcv_rst (Some Tcpcore.State.Closed))
    Tcpcore.State.all;
  check_transition Tcpcore.State.Closed Tcpcore.State.Rcv_rst None

let test_undefined_transitions () =
  check_transition Tcpcore.State.Closed Tcpcore.State.Rcv_fin None;
  check_transition Tcpcore.State.Established Tcpcore.State.Rcv_syn None;
  check_transition Tcpcore.State.Listen Tcpcore.State.Rcv_ack None;
  check_transition Tcpcore.State.Time_wait Tcpcore.State.Close None

let test_synchronized_states () =
  Alcotest.(check bool) "established" true
    (Tcpcore.State.is_synchronized Tcpcore.State.Established);
  Alcotest.(check bool) "time-wait" true
    (Tcpcore.State.is_synchronized Tcpcore.State.Time_wait);
  Alcotest.(check bool) "listen" false
    (Tcpcore.State.is_synchronized Tcpcore.State.Listen);
  Alcotest.(check bool) "syn-sent" false
    (Tcpcore.State.is_synchronized Tcpcore.State.Syn_sent)

let test_valid_events_consistency () =
  List.iter
    (fun s ->
      List.iter
        (fun event ->
          if Tcpcore.State.transition s event = None then
            Alcotest.failf "valid_events lied for %s" (Tcpcore.State.to_string s))
        (Tcpcore.State.valid_events s))
    Tcpcore.State.all

let prop_transitions_closed_world =
  QCheck.Test.make ~count:500 ~name:"random event walks stay in the state set"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_bound 9))
    (fun walk ->
      let events =
        Tcpcore.State.
          [| Passive_open; Active_open; Close; Rcv_syn; Rcv_syn_ack; Rcv_ack;
             Rcv_fin; Rcv_fin_ack; Rcv_rst; Time_wait_expired |]
      in
      let state = ref Tcpcore.State.Closed in
      List.iter
        (fun i ->
          match Tcpcore.State.transition !state events.(i) with
          | Some next -> state := next
          | None -> ())
        walk;
      List.exists (Tcpcore.State.equal !state) Tcpcore.State.all)

(* ------------------------------------------------------------------ *)
(* Connection table                                                    *)

let flow port = Packet.Flow.v ~local:server_ep ~remote:(client_ep port)

let test_conn_table_lookup_priority () =
  let table = Tcpcore.Conn_table.create Demux.Registry.Bsd in
  Tcpcore.Conn_table.listen table ~port:8888 "listener-payload";
  (* SYN to the listening port with no connection: listener. *)
  (match Tcpcore.Conn_table.lookup table (flow 5000) with
  | Tcpcore.Conn_table.Listener payload ->
    Alcotest.(check string) "listener" "listener-payload" payload
  | _ -> Alcotest.fail "expected listener");
  (* Establish a connection: 4-tuple match wins over the listener. *)
  ignore (Tcpcore.Conn_table.add_connection table (flow 5000) "conn-payload");
  (match Tcpcore.Conn_table.lookup table (flow 5000) with
  | Tcpcore.Conn_table.Connection pcb ->
    Alcotest.(check string) "connection" "conn-payload" pcb.Demux.Pcb.data
  | _ -> Alcotest.fail "expected connection");
  (* A different remote port still reaches the listener. *)
  (match Tcpcore.Conn_table.lookup table (flow 5001) with
  | Tcpcore.Conn_table.Listener _ -> ()
  | _ -> Alcotest.fail "expected listener for new peer");
  (* Port without listener: no match. *)
  let other_local =
    Packet.Flow.v
      ~local:(Packet.Flow.endpoint server_addr 9999)
      ~remote:(client_ep 5000)
  in
  (match Tcpcore.Conn_table.lookup table other_local with
  | Tcpcore.Conn_table.No_match -> ()
  | _ -> Alcotest.fail "expected no match")

let test_conn_table_listen_validation () =
  let table = Tcpcore.Conn_table.create Demux.Registry.Bsd in
  Tcpcore.Conn_table.listen table ~port:80 ();
  Alcotest.check_raises "duplicate listener"
    (Invalid_argument "Conn_table.listen: port already has a listener")
    (fun () -> Tcpcore.Conn_table.listen table ~port:80 ());
  Tcpcore.Conn_table.unlisten table ~port:80;
  Tcpcore.Conn_table.listen table ~port:80 ();
  Alcotest.check_raises "bad port" (Invalid_argument "Conn_table.listen: bad port")
    (fun () -> Tcpcore.Conn_table.listen table ~port:(-1) ())

let test_conn_table_wildcard_vs_specific () =
  (* BSD in_pcblookup rules: an address-specific bind beats the
     wildcard bind on the same port. *)
  let table = Tcpcore.Conn_table.create Demux.Registry.Bsd in
  Tcpcore.Conn_table.listen table ~port:80 "wildcard";
  Tcpcore.Conn_table.listen ~addr:server_addr table ~port:80 "specific";
  (match Tcpcore.Conn_table.listener ~addr:server_addr table ~port:80 with
  | Some which -> Alcotest.(check string) "specific wins" "specific" which
  | None -> Alcotest.fail "no listener");
  (* A different local address falls back to the wildcard. *)
  (match Tcpcore.Conn_table.listener ~addr:(addr 10 9 9 9) table ~port:80 with
  | Some which -> Alcotest.(check string) "wildcard fallback" "wildcard" which
  | None -> Alcotest.fail "no wildcard");
  (* Removing the specific bind re-exposes the wildcard. *)
  Tcpcore.Conn_table.unlisten ~addr:server_addr table ~port:80;
  (match Tcpcore.Conn_table.listener ~addr:server_addr table ~port:80 with
  | Some which -> Alcotest.(check string) "back to wildcard" "wildcard" which
  | None -> Alcotest.fail "lost wildcard");
  (* lookup () consults the packet's destination address. *)
  Tcpcore.Conn_table.listen ~addr:(addr 10 9 9 9) table ~port:81 "only-specific";
  (match
     Tcpcore.Conn_table.lookup table
       (Packet.Flow.v
          ~local:(Packet.Flow.endpoint (addr 10 9 9 9) 81)
          ~remote:(client_ep 777))
   with
  | Tcpcore.Conn_table.Listener which ->
    Alcotest.(check string) "routed by dst addr" "only-specific" which
  | _ -> Alcotest.fail "expected the specific listener");
  match
    Tcpcore.Conn_table.lookup table
      (Packet.Flow.v
         ~local:(Packet.Flow.endpoint server_addr 81)
         ~remote:(client_ep 778))
  with
  | Tcpcore.Conn_table.No_match -> ()
  | _ -> Alcotest.fail "specific bind must not catch other addresses"

let test_conn_table_remove () =
  let table = Tcpcore.Conn_table.create Demux.Registry.Bsd in
  ignore (Tcpcore.Conn_table.add_connection table (flow 1) ());
  Alcotest.(check int) "one connection" 1 (Tcpcore.Conn_table.connections table);
  Alcotest.(check bool) "removed" true
    (Tcpcore.Conn_table.remove_connection table (flow 1));
  Alcotest.(check bool) "already gone" false
    (Tcpcore.Conn_table.remove_connection table (flow 1));
  Alcotest.(check int) "empty" 0 (Tcpcore.Conn_table.connections table)

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)

let test_wheel_fires_in_order () =
  let wheel = Tcpcore.Timer_wheel.create ~tick:1.0 () in
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:5.0 "b");
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:2.0 "a");
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:9.0 "c");
  Alcotest.(check int) "pending" 3 (Tcpcore.Timer_wheel.pending wheel);
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:6.0 in
  Alcotest.(check (list string)) "a then b" [ "a"; "b" ] (List.map snd fired);
  Alcotest.(check int) "one left" 1 (Tcpcore.Timer_wheel.pending wheel);
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:100.0 in
  Alcotest.(check (list string)) "c" [ "c" ] (List.map snd fired)

let test_wheel_cancel () =
  let wheel = Tcpcore.Timer_wheel.create ~tick:0.5 () in
  let t1 = Tcpcore.Timer_wheel.schedule wheel ~delay:1.0 1 in
  let _t2 = Tcpcore.Timer_wheel.schedule wheel ~delay:1.0 2 in
  Alcotest.(check bool) "cancelled" true (Tcpcore.Timer_wheel.cancel wheel t1);
  Alcotest.(check bool) "double cancel" false (Tcpcore.Timer_wheel.cancel wheel t1);
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:2.0 in
  Alcotest.(check (list int)) "only t2" [ 2 ] (List.map snd fired)

let test_wheel_wraparound () =
  (* Deadlines several revolutions out must not fire early. *)
  let wheel = Tcpcore.Timer_wheel.create ~slot_count:8 ~tick:1.0 () in
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:100.0 "far");
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:3.0 "near");
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:50.0 in
  Alcotest.(check (list string)) "only near" [ "near" ] (List.map snd fired);
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:101.0 in
  Alcotest.(check (list string)) "far eventually" [ "far" ] (List.map snd fired)

let test_wheel_many_small_steps () =
  (* Advancing in sub-tick steps must still fire everything exactly
     once. *)
  let wheel = Tcpcore.Timer_wheel.create ~slot_count:16 ~tick:1.0 () in
  for i = 1 to 50 do
    ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:(float_of_int i /. 3.0) i)
  done;
  let fired = ref 0 in
  let clock = ref 0.0 in
  while !clock < 20.0 do
    clock := !clock +. 0.1;
    fired := !fired + List.length (Tcpcore.Timer_wheel.advance wheel ~now:!clock)
  done;
  Alcotest.(check int) "all fired once" 50 !fired;
  Alcotest.(check int) "none pending" 0 (Tcpcore.Timer_wheel.pending wheel)

let test_wheel_full_revolution () =
  (* Regression: an advance of exactly one revolution must cover every
     slot once — the old step bound visited [slot_count + 1] slots,
     re-scanning the starting slot.  Entries in every slot, including
     both endpoints of the sweep, fire exactly once. *)
  let wheel = Tcpcore.Timer_wheel.create ~slot_count:8 ~tick:1.0 () in
  for i = 0 to 7 do
    ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:(float_of_int i) i)
  done;
  let fired = Tcpcore.Timer_wheel.advance wheel ~now:8.0 in
  Alcotest.(check (list int)) "all 8 fire, each once" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.map snd fired);
  Alcotest.(check int) "none pending" 0 (Tcpcore.Timer_wheel.pending wheel)

let test_wheel_multi_revolution_delay () =
  (* A delay of more than one revolution must survive intermediate
     full-revolution advances and fire only when its deadline passes. *)
  let wheel = Tcpcore.Timer_wheel.create ~slot_count:8 ~tick:1.0 () in
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:20.0 "late");
  Alcotest.(check (list string)) "revolution 1: nothing" []
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:8.0));
  Alcotest.(check (list string)) "revolution 2: nothing" []
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:16.0));
  Alcotest.(check int) "still pending" 1 (Tcpcore.Timer_wheel.pending wheel);
  Alcotest.(check (list string)) "fires in revolution 3" [ "late" ]
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:20.0));
  Alcotest.(check int) "none pending" 0 (Tcpcore.Timer_wheel.pending wheel)

let test_wheel_boundary_landing () =
  (* The sweep is endpoint-inclusive: a deadline exactly on the slot
     boundary the advance lands on fires in that same advance, not the
     next one. *)
  let wheel = Tcpcore.Timer_wheel.create ~slot_count:16 ~tick:0.5 () in
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:3.0 "edge");
  Alcotest.(check (list string)) "fires on the boundary" [ "edge" ]
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:3.0));
  (* And again when the advance starts on a boundary too. *)
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:1.5 "next");
  Alcotest.(check (list string)) "boundary to boundary" [ "next" ]
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:4.5))

let test_wheel_validation () =
  let wheel = Tcpcore.Timer_wheel.create ~tick:1.0 () in
  ignore (Tcpcore.Timer_wheel.advance wheel ~now:5.0);
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timer_wheel.advance: clock cannot move backwards")
    (fun () -> ignore (Tcpcore.Timer_wheel.advance wheel ~now:1.0));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Timer_wheel.schedule: negative or NaN delay") (fun () ->
      ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:(-1.0) ()));
  Alcotest.check_raises "bad tick"
    (Invalid_argument "Timer_wheel.create: tick <= 0") (fun () ->
      ignore (Tcpcore.Timer_wheel.create ~tick:0.0 () : unit Tcpcore.Timer_wheel.t))

let test_wheel_ownership () =
  (* A wheel belongs to the first domain that schedules, cancels or
     advances on it: a mis-steered timer operation from another domain
     must raise instead of racing the owner's slot lists. *)
  let wheel = Tcpcore.Timer_wheel.create ~tick:1.0 () in
  Alcotest.(check bool) "unclaimed at creation" true
    (Tcpcore.Timer_wheel.owner wheel = None);
  ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:1.0 "mine");
  let self = (Domain.self () :> int) in
  Alcotest.(check bool) "claimed by first use" true
    (Tcpcore.Timer_wheel.owner wheel = Some self);
  (* Same-domain use stays fine. *)
  ignore (Tcpcore.Timer_wheel.advance wheel ~now:0.5);
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           try
             ignore (Tcpcore.Timer_wheel.advance wheel ~now:2.0);
             None
           with Invalid_argument msg -> Some msg))
  in
  (match raised with
  | Some msg ->
    Alcotest.(check bool) "names the operation and both domains" true
      (String.length msg > 0
      && String.sub msg 0 24 = "Timer_wheel.advance: whe")
  | None -> Alcotest.fail "cross-domain advance did not raise");
  (* The owner is unaffected by the stranger's failed call. *)
  Alcotest.(check int) "still one pending" 1
    (Tcpcore.Timer_wheel.pending wheel);
  Alcotest.(check (list string)) "owner still advances" [ "mine" ]
    (List.map snd (Tcpcore.Timer_wheel.advance wheel ~now:2.0))

let test_wheel_owned_by_spawning_domain () =
  (* A wheel first used inside a spawned domain belongs there — the
     per-core stack pattern (Parallel.Smp creates each stack inside
     its worker domain). *)
  let wheel = Tcpcore.Timer_wheel.create ~tick:1.0 () in
  let worker_id, timer =
    Domain.join
      (Domain.spawn (fun () ->
           let timer = Tcpcore.Timer_wheel.schedule wheel ~delay:1.0 () in
           ((Domain.self () :> int), timer)))
  in
  Alcotest.(check bool) "owned by the worker" true
    (Tcpcore.Timer_wheel.owner wheel = Some worker_id);
  Alcotest.check_raises "main domain is now a stranger"
    (Invalid_argument
       (Printf.sprintf
          "Timer_wheel.cancel: wheel is owned by domain %d but was called \
           from domain %d (mis-steered timer)" worker_id
          ((Domain.self () :> int))))
    (fun () -> ignore (Tcpcore.Timer_wheel.cancel wheel timer))

let prop_wheel_fires_everything =
  QCheck.Test.make ~count:200 ~name:"wheel fires every uncancelled timer once"
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range 0.0 500.0))
    (fun delays ->
      let wheel = Tcpcore.Timer_wheel.create ~slot_count:32 ~tick:2.0 () in
      List.iter (fun d -> ignore (Tcpcore.Timer_wheel.schedule wheel ~delay:d ())) delays;
      let fired = Tcpcore.Timer_wheel.advance wheel ~now:1000.0 in
      List.length fired = List.length delays
      && Tcpcore.Timer_wheel.pending wheel = 0)

(* ------------------------------------------------------------------ *)
(* Stack: full segment exchanges between two instances                 *)

let make_pair () =
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  let client = Tcpcore.Stack.create ~local_addr:client_addr () in
  (server, client)

let pump server client =
  let rec go n =
    if n > 100 then Alcotest.fail "stacks never went quiescent";
    let client_out = Tcpcore.Stack.poll_output client in
    let server_out = Tcpcore.Stack.poll_output server in
    List.iter (Tcpcore.Stack.handle_segment server) client_out;
    List.iter (Tcpcore.Stack.handle_segment client) server_out;
    if client_out <> [] || server_out <> [] then go (n + 1)
  in
  go 0

let establish ?(port = 4000) server client =
  let received = Buffer.create 64 in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun t conn payload ->
      Buffer.add_string received payload;
      Tcpcore.Stack.send t conn ("echo:" ^ payload));
  let conn = Tcpcore.Stack.connect client ~local_port:port ~remote:server_ep in
  pump server client;
  (conn, received)

let test_stack_handshake () =
  let server, client = make_pair () in
  let conn, _ = establish server client in
  Alcotest.(check state) "client established" Tcpcore.State.Established
    conn.Tcpcore.Stack.state;
  Alcotest.(check int) "server has the connection" 1
    (Tcpcore.Stack.connection_count server);
  match
    Tcpcore.Stack.connection_of_flow server
      (Packet.Flow.v ~local:server_ep ~remote:(client_ep 4000))
  with
  | Some sconn ->
    Alcotest.(check state) "server established" Tcpcore.State.Established
      sconn.Tcpcore.Stack.state
  | None -> Alcotest.fail "server lost the connection"

let test_stack_data_echo () =
  let server, client = make_pair () in
  let conn, received = establish server client in
  Tcpcore.Stack.send client conn "hello";
  pump server client;
  Tcpcore.Stack.send client conn " world";
  pump server client;
  Alcotest.(check string) "server got both" "hello world"
    (Buffer.contents received);
  Alcotest.(check int) "client counted bytes in" (String.length "echo:hello" + String.length "echo: world")
    conn.Tcpcore.Stack.bytes_in;
  Alcotest.(check int) "client counted bytes out" 11 conn.Tcpcore.Stack.bytes_out

let test_stack_duplicate_data_reacked_once () =
  (* Retransmission of an already-delivered segment must not deliver
     twice: the stale sequence number draws a duplicate ACK only. *)
  let server, client = make_pair () in
  let conn, received = establish server client in
  Tcpcore.Stack.send client conn "once";
  (* Capture the data segment so we can replay it. *)
  let outgoing = Tcpcore.Stack.poll_output client in
  List.iter (Tcpcore.Stack.handle_segment server) outgoing;
  pump server client;
  let data_segment =
    match outgoing with
    | [ s ] -> s
    | _ -> Alcotest.fail "expected one data segment"
  in
  Tcpcore.Stack.handle_segment server data_segment (* replay *);
  pump server client;
  Alcotest.(check string) "delivered once" "once" (Buffer.contents received)

let test_stack_full_close () =
  let server, client = make_pair () in
  let conn, _ = establish server client in
  Tcpcore.Stack.close client conn;
  pump server client;
  Alcotest.(check state) "client FIN-WAIT-2" Tcpcore.State.Fin_wait_2
    conn.Tcpcore.Stack.state;
  let sconn =
    match
      Tcpcore.Stack.connection_of_flow server
        (Packet.Flow.v ~local:server_ep ~remote:(client_ep 4000))
    with
    | Some c -> c
    | None -> Alcotest.fail "server connection missing"
  in
  Alcotest.(check state) "server CLOSE-WAIT" Tcpcore.State.Close_wait
    sconn.Tcpcore.Stack.state;
  Tcpcore.Stack.close server sconn;
  pump server client;
  Alcotest.(check state) "client TIME-WAIT" Tcpcore.State.Time_wait
    conn.Tcpcore.Stack.state;
  (* Server reached CLOSED and removed the PCB. *)
  Alcotest.(check int) "server cleaned up" 0
    (Tcpcore.Stack.connection_count server);
  (* 2MSL expiry cleans the client too. *)
  Tcpcore.Stack.expire_time_wait client conn;
  Alcotest.(check int) "client cleaned up" 0
    (Tcpcore.Stack.connection_count client)

let test_stack_rst_on_unknown () =
  let server, _client = make_pair () in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
  (* Data segment for a connection that does not exist, to a port that
     is listening: RST. *)
  let stray =
    Packet.Segment.make ~src:(client_ep 1234) ~dst:server_ep
      ~flags:Packet.Tcp_header.flag_psh_ack ~seq:10l ~payload:"?" ()
  in
  Tcpcore.Stack.handle_segment server stray;
  Alcotest.(check int) "one RST" 1 (Tcpcore.Stack.rsts_sent server);
  (match Tcpcore.Stack.poll_output server with
  | [ segment ] ->
    Alcotest.(check bool) "rst flag" true
      segment.Packet.Segment.tcp.Packet.Tcp_header.flags.Packet.Tcp_header.rst
  | _ -> Alcotest.fail "expected exactly the RST");
  (* And to a port nobody listens on. *)
  let cold =
    Packet.Segment.make ~src:(client_ep 1235)
      ~dst:(Packet.Flow.endpoint server_addr 7)
      ~flags:Packet.Tcp_header.flag_syn ()
  in
  Tcpcore.Stack.handle_segment server cold;
  Alcotest.(check int) "second RST" 2 (Tcpcore.Stack.rsts_sent server)

let test_stack_rst_teardown () =
  let server, client = make_pair () in
  let _conn, _ = establish server client in
  let rst =
    Packet.Segment.make ~src:(client_ep 4000) ~dst:server_ep
      ~flags:Packet.Tcp_header.flag_rst ()
  in
  Tcpcore.Stack.handle_segment server rst;
  Alcotest.(check int) "connection dropped" 0
    (Tcpcore.Stack.connection_count server)

let test_stack_send_validation () =
  let server, client = make_pair () in
  let conn, _ = establish server client in
  Tcpcore.Stack.close client conn;
  pump server client;
  Alcotest.check_raises "send after close"
    (Invalid_argument "Stack.send: cannot send in FIN-WAIT-2") (fun () ->
      Tcpcore.Stack.send client conn "too late")

let test_stack_handle_bytes () =
  let server, _client = make_pair () in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
  let syn =
    Packet.Segment.make ~src:(client_ep 6000) ~dst:server_ep
      ~flags:Packet.Tcp_header.flag_syn ~seq:5l ()
  in
  (match Tcpcore.Stack.handle_bytes server (Packet.Segment.to_bytes syn) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "accepted" 1 (Tcpcore.Stack.connection_count server);
  (* Wrong destination host. *)
  let misdelivered =
    Packet.Segment.make ~src:(client_ep 6001)
      ~dst:(Packet.Flow.endpoint (addr 9 9 9 9) 8888)
      ~flags:Packet.Tcp_header.flag_syn ()
  in
  (match
     Tcpcore.Stack.handle_bytes server (Packet.Segment.to_bytes misdelivered)
   with
  | Ok () -> Alcotest.fail "accepted a misdelivered datagram"
  | Error _ -> ());
  (* Garbage bytes. *)
  match Tcpcore.Stack.handle_bytes server (Bytes.make 10 'x') with
  | Ok () -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

let test_stack_demux_metering () =
  (* The receive path is metered: handshake + 2 data segments from an
     established peer produce lookups in the demux stats. *)
  let server, client = make_pair () in
  let conn, _ = establish server client in
  Tcpcore.Stack.send client conn "q1";
  pump server client;
  let s = Demux.Lookup_stats.snapshot (Tcpcore.Stack.demux_stats server) in
  Alcotest.(check bool)
    (Printf.sprintf "lookups %d >= 3" s.Demux.Lookup_stats.lookups)
    true
    (s.Demux.Lookup_stats.lookups >= 3);
  Alcotest.(check int) "one insert" 1 s.Demux.Lookup_stats.inserts

let test_stack_time_wait_reaping () =
  (* A full close leaves the client in TIME-WAIT; the stack's timer
     wheel reaps it after the 2MSL timeout via advance_clock. *)
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  let client =
    Tcpcore.Stack.create ~time_wait_timeout:30.0 ~local_addr:client_addr ()
  in
  let conn, _ = establish server client in
  Tcpcore.Stack.close client conn;
  pump server client;
  let sconn =
    match
      Tcpcore.Stack.connection_of_flow server
        (Packet.Flow.v ~local:server_ep ~remote:(client_ep 4000))
    with
    | Some c -> c
    | None -> Alcotest.fail "server connection missing"
  in
  Tcpcore.Stack.close server sconn;
  pump server client;
  Alcotest.(check state) "TIME-WAIT" Tcpcore.State.Time_wait
    conn.Tcpcore.Stack.state;
  Alcotest.(check int) "timer armed" 1 (Tcpcore.Stack.pending_time_wait client);
  (* Too early: nothing reaped. *)
  Alcotest.(check int) "not yet" 0 (Tcpcore.Stack.advance_clock client ~now:10.0);
  Alcotest.(check int) "still there" 1 (Tcpcore.Stack.connection_count client);
  (* Past 2MSL: reaped. *)
  Alcotest.(check int) "reaped" 1 (Tcpcore.Stack.advance_clock client ~now:31.5);
  Alcotest.(check int) "gone" 0 (Tcpcore.Stack.connection_count client);
  Alcotest.(check state) "closed" Tcpcore.State.Closed conn.Tcpcore.Stack.state

let test_stack_retransmission_recovers_loss () =
  (* Drop a data segment on the floor; after the RTO the client
     re-sends it and the exchange completes. *)
  let server, client = make_pair () in
  let conn, received = establish server client in
  Tcpcore.Stack.send client conn "precious";
  (* The segment is "lost": drain and discard the client's outbox. *)
  (match Tcpcore.Stack.poll_output client with
  | [ _lost ] -> ()
  | _ -> Alcotest.fail "expected one data segment");
  Alcotest.(check string) "not delivered" "" (Buffer.contents received);
  (* Before the RTO nothing happens. *)
  Alcotest.(check int) "no premature retransmit" 0
    (Tcpcore.Stack.advance_clock client ~now:0.5);
  (* After the RTO the segment is retransmitted. *)
  Alcotest.(check int) "one retransmit" 1
    (Tcpcore.Stack.advance_clock client ~now:2.5);
  Alcotest.(check int) "counter" 1 (Tcpcore.Stack.retransmissions client);
  pump server client;
  Alcotest.(check string) "recovered" "precious" (Buffer.contents received);
  (* Once acknowledged, later clock advances retransmit nothing. *)
  Alcotest.(check int) "quiet after ack" 0
    (Tcpcore.Stack.advance_clock client ~now:10.0)

let test_stack_rto_backoff () =
  (* Each unanswered retransmission doubles the wait: with a 1 s base
     RTO the re-sends land near 1, 3, 7 and 15 s.  A fixed-RTO
     implementation would fire again by 2.5 s; the quiet windows below
     prove the doubling (with slack for the 0.25 s timer-wheel
     tick).  Jitter is disabled: this test pins the classic
     deterministic schedule; the jittered one is audited in
     test_stack_rto_jitter_*. *)
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  let client =
    Tcpcore.Stack.create ~rto_jitter:false ~local_addr:client_addr ()
  in
  let conn, _ = establish server client in
  Tcpcore.Stack.send client conn "into the void";
  ignore (Tcpcore.Stack.poll_output client);
  let advance now = Tcpcore.Stack.advance_clock client ~now in
  Alcotest.(check int) "first retransmit ~1s" 1 (advance 1.5);
  Alcotest.(check int) "quiet before 3s" 0 (advance 2.9);
  Alcotest.(check int) "second ~3s" 1 (advance 3.6);
  Alcotest.(check int) "quiet before 7s" 0 (advance 6.9);
  Alcotest.(check int) "third ~7s" 1 (advance 7.7);
  Alcotest.(check int) "quiet before 15s" 0 (advance 14.9);
  Alcotest.(check int) "fourth ~15s" 1 (advance 15.8);
  Alcotest.(check int) "counter" 4 (Tcpcore.Stack.retransmissions client);
  (* The segment is still deliverable after all that. *)
  ignore (Tcpcore.Stack.poll_output client);
  Alcotest.(check bool) "still queued" true
    (conn.Tcpcore.Stack.unacked <> [])

let test_stack_retransmit_attempts_bounded () =
  let client =
    Tcpcore.Stack.create ~max_retransmits:3 ~local_addr:client_addr ()
  in
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
  ignore (Tcpcore.Stack.connect client ~local_port:4000 ~remote:server_ep);
  ignore (Tcpcore.Stack.poll_output client);
  (* The SYN vanishes; drive the clock far past every backoff stage. *)
  for i = 1 to 10 do
    ignore (Tcpcore.Stack.advance_clock client ~now:(float_of_int i *. 100.0));
    ignore (Tcpcore.Stack.poll_output client)
  done;
  Alcotest.(check int) "abandoned after max_retransmits" 3
    (Tcpcore.Stack.retransmissions client)

let test_stack_rto_jitter_bounds () =
  (* Full jitter on the capped exponential: every delay for attempt n
     lies in [base, base * 2^min(6, n-1)] — never below the base (no
     hammering), never above the 64x cap (no unbounded sulk). *)
  let base = 0.5 in
  let stack =
    Tcpcore.Stack.create ~retransmit_timeout:base ~local_addr:client_addr ()
  in
  Alcotest.(check (float 1e-9))
    "attempt 1 is exactly the base" base
    (Tcpcore.Stack.rto_for_attempt stack 1);
  for attempt = 2 to 20 do
    let capped = base *. Float.of_int (1 lsl min 6 (attempt - 1)) in
    for _ = 1 to 50 do
      let delay = Tcpcore.Stack.rto_for_attempt stack attempt in
      if delay < base -. 1e-9 then
        Alcotest.failf "attempt %d: delay %g below base %g" attempt delay base;
      if delay > capped +. 1e-9 then
        Alcotest.failf "attempt %d: delay %g above cap %g" attempt delay capped
    done
  done

let test_stack_rto_jitter_deterministic () =
  (* Same seed, same delay sequence; a different seed diverges; and the
     draws genuinely spread (full jitter, not a constant offset). *)
  let sequence ~seed =
    let stack =
      Tcpcore.Stack.create ~rto_seed:seed ~local_addr:client_addr ()
    in
    List.init 32 (fun i -> Tcpcore.Stack.rto_for_attempt stack (2 + (i mod 8)))
  in
  let a = sequence ~seed:42 and b = sequence ~seed:42 in
  Alcotest.(check (list (float 1e-12))) "seed 42 reproduces" a b;
  let c = sequence ~seed:43 in
  Alcotest.(check bool) "seed 43 diverges" true (a <> c);
  let spread =
    List.fold_left max neg_infinity a -. List.fold_left min infinity a
  in
  Alcotest.(check bool) "draws spread" true (spread > 0.1)

let test_stack_rto_jitter_off_is_doubling () =
  let stack =
    Tcpcore.Stack.create ~rto_jitter:false ~retransmit_timeout:1.0
      ~local_addr:client_addr ()
  in
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d" (i + 1))
        expected
        (Tcpcore.Stack.rto_for_attempt stack (i + 1)))
    [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 64.0; 64.0 ]

let test_stack_overload_tiers () =
  (* The stack maps each pressure tier onto a named drop reason.
     Shed_new_flows refuses listener SYNs silently; Drop_batches also
     sheds stray traffic (no RST); Reject sheds before parsing. *)
  let tier = ref Tcpcore.Stack.Normal in
  let stack = Tcpcore.Stack.create ~local_addr:server_addr () in
  Tcpcore.Stack.set_overload_probe stack (fun () -> !tier);
  Tcpcore.Stack.listen stack ~port:80 ~on_data:(fun _ _ _ -> ());
  let syn ~client_port =
    Packet.Segment.make
      ~src:(Packet.Flow.endpoint client_addr client_port)
      ~dst:(Packet.Flow.endpoint server_addr 80)
      ~flags:Packet.Tcp_header.flag_syn ~seq:100l ()
  in
  let drop reason = List.assoc reason (Tcpcore.Stack.drop_counts stack) in
  (* Normal: the SYN is accepted. *)
  Tcpcore.Stack.handle_segment stack (syn ~client_port:5000);
  Alcotest.(check int) "accepted" 1 (Tcpcore.Stack.connection_count stack);
  ignore (Tcpcore.Stack.poll_output stack);
  (* Shed_new_flows: a fresh SYN is shed, counted, and draws no RST;
     the established connection's traffic still flows. *)
  tier := Tcpcore.Stack.Shed_new_flows;
  Tcpcore.Stack.handle_segment stack (syn ~client_port:5001);
  Alcotest.(check int) "not accepted" 1 (Tcpcore.Stack.connection_count stack);
  Alcotest.(check int) "shed counted" 1 (drop "overload-shed-new-flow");
  Alcotest.(check (list pass)) "no RST for shed SYN" []
    (Tcpcore.Stack.poll_output stack);
  (* Drop_batches: stray non-SYN traffic is shed without the RST
     courtesy. *)
  tier := Tcpcore.Stack.Drop_batches;
  let stray =
    Packet.Segment.make
      ~src:(Packet.Flow.endpoint client_addr 5002)
      ~dst:(Packet.Flow.endpoint server_addr 80)
      ~flags:Packet.Tcp_header.flag_ack ~seq:7l ~ack_number:9l ()
  in
  Tcpcore.Stack.handle_segment stack stray;
  Alcotest.(check int) "stray shed" 1 (drop "overload-drop-batch");
  Alcotest.(check int) "no RST sent" 0 (Tcpcore.Stack.rsts_sent stack);
  Tcpcore.Stack.handle_segment stack (syn ~client_port:5003);
  Alcotest.(check int) "SYN shed at drop-batches too" 2
    (drop "overload-drop-batch");
  (* Reject: handle_bytes sheds before parsing — even junk is counted
     under the tier, not as a parse error. *)
  tier := Tcpcore.Stack.Reject;
  (match Tcpcore.Stack.handle_bytes stack (Bytes.create 3) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reject tier let a datagram in");
  Alcotest.(check int) "rejected" 1 (drop "overload-reject");
  Alcotest.(check int) "not a parse error" 0 (drop "parse-error");
  (* Back to normal: full service resumes. *)
  tier := Tcpcore.Stack.Normal;
  Tcpcore.Stack.handle_segment stack (syn ~client_port:5004);
  Alcotest.(check int) "recovered" 2 (Tcpcore.Stack.connection_count stack);
  Alcotest.(check int) "drops sum" 4 (Tcpcore.Stack.drops_total stack)

let test_stack_fuzz_never_raises () =
  (* 10k hostile buffers: pure junk, bit-flipped real segments,
     truncated real segments and misdelivered ones.  [handle_bytes]
     must never raise, and every [Error] must be attributed to a named
     drop counter. *)
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
  let rng = Numerics.Rng.create ~seed:99 in
  let byte () = Char.chr (Numerics.Rng.int rng ~bound:256) in
  let template i =
    Packet.Segment.to_bytes
      (Packet.Segment.make
         ~src:(client_ep (1024 + (i mod 60000)))
         ~dst:server_ep ~flags:Packet.Tcp_header.flag_syn
         ~seq:(Int32.of_int i) ())
  in
  let misdelivered =
    Packet.Segment.to_bytes
      (Packet.Segment.make ~src:(client_ep 5000)
         ~dst:(Packet.Flow.endpoint (addr 172 16 0 9) 80)
         ~flags:Packet.Tcp_header.flag_syn ~seq:1l ())
  in
  let errors = ref 0 in
  for i = 1 to 10_000 do
    let buf =
      match i mod 4 with
      | 0 -> Bytes.init (Numerics.Rng.int rng ~bound:120) (fun _ -> byte ())
      | 1 ->
        let buf = template i in
        for _ = 1 to 1 + Numerics.Rng.int rng ~bound:4 do
          Bytes.set buf (Numerics.Rng.int rng ~bound:(Bytes.length buf)) (byte ())
        done;
        buf
      | 2 ->
        let buf = template i in
        Bytes.sub buf 0 (Numerics.Rng.int rng ~bound:(Bytes.length buf))
      | _ -> misdelivered
    in
    match Tcpcore.Stack.handle_bytes server buf with
    | Ok () -> ()
    | Error _ -> incr errors
    | exception exn ->
      Alcotest.failf "handle_bytes raised on buffer %d: %s" i
        (Printexc.to_string exn)
  done;
  ignore (Tcpcore.Stack.poll_output server);
  Alcotest.(check bool) "hostile stream mostly shed" true (!errors > 5000);
  Alcotest.(check int) "every error attributed to a named counter" !errors
    (Tcpcore.Stack.drops_total server);
  let counts = Tcpcore.Stack.drop_counts server in
  Alcotest.(check int) "counters sum to the total"
    (Tcpcore.Stack.drops_total server)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 counts);
  Alcotest.(check bool) "parse errors seen" true
    (List.assoc "parse-error" counts > 0);
  Alcotest.(check bool) "misdeliveries seen" true
    (List.assoc "wrong-destination" counts > 0)

let test_stack_ack_cancels_retransmission () =
  (* Normal delivery: the ACK comes back before the RTO, so advancing
     the clock produces no retransmissions at all. *)
  let server, client = make_pair () in
  let conn, _ = establish server client in
  Tcpcore.Stack.send client conn "swift";
  pump server client;
  Alcotest.(check int) "nothing to do" 0
    (Tcpcore.Stack.advance_clock client ~now:50.0);
  Alcotest.(check int) "no retransmissions" 0
    (Tcpcore.Stack.retransmissions client)

let test_stack_syn_retransmission () =
  (* A SYN into the void is retried, and the handshake still completes
     when the peer finally hears one. *)
  let server, client = make_pair () in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> ());
  let conn = Tcpcore.Stack.connect client ~local_port:4000 ~remote:server_ep in
  (match Tcpcore.Stack.poll_output client with
  | [ _lost_syn ] -> ()
  | _ -> Alcotest.fail "expected the SYN");
  Alcotest.(check int) "syn retransmitted" 1
    (Tcpcore.Stack.advance_clock client ~now:1.5);
  pump server client;
  Alcotest.(check state) "established anyway" Tcpcore.State.Established
    conn.Tcpcore.Stack.state

let test_stack_delayed_acks () =
  (* With delayed acks on, one data segment produces no immediate ack;
     a second one triggers it; a lone segment is acked by the 200 ms
     timer. *)
  let server = Tcpcore.Stack.create ~delayed_acks:true ~local_addr:server_addr () in
  let client = Tcpcore.Stack.create ~local_addr:client_addr () in
  let conn, _ =
    let received = Buffer.create 16 in
    Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ payload ->
        Buffer.add_string received payload);
    let conn = Tcpcore.Stack.connect client ~local_port:4000 ~remote:server_ep in
    pump server client;
    (conn, received)
  in
  Alcotest.(check state) "established" Tcpcore.State.Established
    conn.Tcpcore.Stack.state;
  (* First data segment: server stays quiet. *)
  Tcpcore.Stack.send client conn "one";
  List.iter (Tcpcore.Stack.handle_segment server) (Tcpcore.Stack.poll_output client);
  Alcotest.(check (list pass)) "no immediate ack" []
    (Tcpcore.Stack.poll_output server);
  (* Second data segment: ack comes out at once. *)
  Tcpcore.Stack.send client conn "two";
  List.iter (Tcpcore.Stack.handle_segment server) (Tcpcore.Stack.poll_output client);
  (match Tcpcore.Stack.poll_output server with
  | [ ack ] ->
    Alcotest.(check bool) "is an ack" true
      ack.Packet.Segment.tcp.Packet.Tcp_header.flags.Packet.Tcp_header.ack;
    Tcpcore.Stack.handle_segment client ack
  | _ -> Alcotest.fail "expected exactly one ack for two segments");
  (* Third, lone segment: the delack timer delivers the ack. *)
  Tcpcore.Stack.send client conn "three";
  List.iter (Tcpcore.Stack.handle_segment server) (Tcpcore.Stack.poll_output client);
  Alcotest.(check (list pass)) "still quiet" [] (Tcpcore.Stack.poll_output server);
  Alcotest.(check int) "timer fires" 1
    (Tcpcore.Stack.advance_clock server ~now:1.0);
  (match Tcpcore.Stack.poll_output server with
  | [ ack ] -> Tcpcore.Stack.handle_segment client ack
  | _ -> Alcotest.fail "expected the delayed ack");
  (* The client's retransmission queue must now be clear. *)
  Alcotest.(check int) "client quiescent" 0
    (Tcpcore.Stack.advance_clock client ~now:50.0)

let test_stack_simultaneous_open () =
  (* Both ends actively connect to each other; the crossing SYNs drive
     both through SYN-RECEIVED to ESTABLISHED (RFC 793 figure 8). *)
  let a = Tcpcore.Stack.create ~local_addr:server_addr () in
  let b = Tcpcore.Stack.create ~local_addr:client_addr () in
  let conn_a =
    Tcpcore.Stack.connect a ~local_port:8888 ~remote:(client_ep 7000)
  in
  let conn_b =
    Tcpcore.Stack.connect b ~local_port:7000 ~remote:server_ep
  in
  (* Exchange the crossing SYNs, then pump to quiescence. *)
  let a_out = Tcpcore.Stack.poll_output a in
  let b_out = Tcpcore.Stack.poll_output b in
  List.iter (Tcpcore.Stack.handle_segment b) a_out;
  List.iter (Tcpcore.Stack.handle_segment a) b_out;
  pump a b;
  Alcotest.(check state) "a established" Tcpcore.State.Established
    conn_a.Tcpcore.Stack.state;
  Alcotest.(check state) "b established" Tcpcore.State.Established
    conn_b.Tcpcore.Stack.state

let test_stack_many_clients () =
  (* 100 concurrent connections through one server stack, then data on
     each in an interleaved order. *)
  let server = Tcpcore.Stack.create ~local_addr:server_addr () in
  let received = ref 0 in
  Tcpcore.Stack.listen server ~port:8888 ~on_data:(fun _ _ _ -> incr received);
  let clients =
    Array.init 100 (fun i ->
        let c =
          Tcpcore.Stack.create ~local_addr:(addr 10 1 (i / 250) (1 + (i mod 250))) ()
        in
        (c, Tcpcore.Stack.connect c ~local_port:(5000 + i) ~remote:server_ep))
  in
  let pump_all () =
    let rec go n =
      if n > 200 then Alcotest.fail "no quiescence";
      let moved = ref false in
      Array.iter
        (fun (c, _) ->
          let out = Tcpcore.Stack.poll_output c in
          if out <> [] then moved := true;
          List.iter (Tcpcore.Stack.handle_segment server) out)
        clients;
      let server_out = Tcpcore.Stack.poll_output server in
      if server_out <> [] then moved := true;
      List.iter
        (fun segment ->
          let dst = segment.Packet.Segment.ip.Packet.Ipv4.dst in
          Array.iter
            (fun (c, _) ->
              if Packet.Ipv4.equal_addr (Tcpcore.Stack.local_addr c) dst then
                Tcpcore.Stack.handle_segment c segment)
            clients)
        server_out;
      if !moved then go (n + 1)
    in
    go 0
  in
  pump_all ();
  Alcotest.(check int) "all connected" 100 (Tcpcore.Stack.connection_count server);
  Array.iteri
    (fun i (_, conn) ->
      Alcotest.(check state)
        (Printf.sprintf "client %d established" i)
        Tcpcore.State.Established conn.Tcpcore.Stack.state)
    clients;
  (* Interleave data across all connections — the OLTP pattern. *)
  Array.iter
    (fun (c, conn) -> Tcpcore.Stack.send c conn "txn")
    clients;
  pump_all ();
  Alcotest.(check int) "all queries delivered" 100 !received

(* ------------------------------------------------------------------ *)

let prop_stack_survives_arbitrary_segments =
  (* Robustness: a listening stack fed any sequence of syntactically
     valid segments (random flags, seqs, acks, ports, payloads) must
     never raise, and its connection count must stay sane. *)
  let arbitrary_segment_spec =
    QCheck.Gen.(
      map3
        (fun (sport, dport) (flag_bits, payload) (seq, ack) ->
          (sport, dport, flag_bits, payload, seq, ack))
        (pair (int_range 1 8) (int_range 8887 8890))
        (pair (int_bound 63) (string_size (int_bound 20)))
        (pair (int_bound 100000) (int_bound 100000)))
  in
  QCheck.Test.make ~count:200 ~name:"stack survives arbitrary segment streams"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) arbitrary_segment_spec))
    (fun specs ->
      let stack = Tcpcore.Stack.create ~local_addr:server_addr () in
      Tcpcore.Stack.listen stack ~port:8888 ~on_data:(fun t conn payload ->
          (* An application that answers; exercises send paths too. *)
          if String.length payload > 0 && conn.Tcpcore.Stack.state = Tcpcore.State.Established
          then Tcpcore.Stack.send t conn "r");
      List.iter
        (fun (sport, dport, flag_bits, payload, seq, ack) ->
          let flags =
            { Packet.Tcp_header.fin = flag_bits land 1 <> 0;
              syn = flag_bits land 2 <> 0;
              rst = flag_bits land 4 <> 0;
              psh = flag_bits land 8 <> 0;
              ack = flag_bits land 16 <> 0;
              urg = flag_bits land 32 <> 0 }
          in
          let segment =
            Packet.Segment.make
              ~src:(client_ep (1000 + sport))
              ~dst:(Packet.Flow.endpoint server_addr dport)
              ~flags ~payload
              ~seq:(Int32.of_int seq)
              ~ack_number:(Int32.of_int ack) ()
          in
          Tcpcore.Stack.handle_segment stack segment;
          ignore (Tcpcore.Stack.poll_output stack))
        specs;
      ignore (Tcpcore.Stack.advance_clock stack ~now:100.0);
      ignore (Tcpcore.Stack.poll_output stack);
      Tcpcore.Stack.connection_count stack <= 8)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_transitions_closed_world; prop_wheel_fires_everything;
      prop_stack_survives_arbitrary_segments ]

let () =
  Alcotest.run "tcpcore"
    [ ( "state-machine",
        [ Alcotest.test_case "server handshake" `Quick test_three_way_handshake_server;
          Alcotest.test_case "client handshake" `Quick test_three_way_handshake_client;
          Alcotest.test_case "simultaneous open" `Quick test_simultaneous_open;
          Alcotest.test_case "active close" `Quick test_active_close_path;
          Alcotest.test_case "passive close" `Quick test_passive_close_path;
          Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
          Alcotest.test_case "RST teardown" `Quick test_rst_tears_down;
          Alcotest.test_case "undefined transitions" `Quick test_undefined_transitions;
          Alcotest.test_case "synchronized states" `Quick test_synchronized_states;
          Alcotest.test_case "valid_events" `Quick test_valid_events_consistency ] );
      ( "conn-table",
        [ Alcotest.test_case "lookup priority" `Quick test_conn_table_lookup_priority;
          Alcotest.test_case "listen validation" `Quick test_conn_table_listen_validation;
          Alcotest.test_case "wildcard vs specific" `Quick
            test_conn_table_wildcard_vs_specific;
          Alcotest.test_case "remove" `Quick test_conn_table_remove ] );
      ( "stack",
        [ Alcotest.test_case "handshake" `Quick test_stack_handshake;
          Alcotest.test_case "data echo" `Quick test_stack_data_echo;
          Alcotest.test_case "duplicate data" `Quick
            test_stack_duplicate_data_reacked_once;
          Alcotest.test_case "full close" `Quick test_stack_full_close;
          Alcotest.test_case "RST on unknown" `Quick test_stack_rst_on_unknown;
          Alcotest.test_case "RST teardown" `Quick test_stack_rst_teardown;
          Alcotest.test_case "send validation" `Quick test_stack_send_validation;
          Alcotest.test_case "handle_bytes" `Quick test_stack_handle_bytes;
          Alcotest.test_case "demux metering" `Quick test_stack_demux_metering;
          Alcotest.test_case "TIME-WAIT reaping" `Quick test_stack_time_wait_reaping;
          Alcotest.test_case "retransmission recovers loss" `Quick
            test_stack_retransmission_recovers_loss;
          Alcotest.test_case "RTO exponential backoff" `Quick
            test_stack_rto_backoff;
          Alcotest.test_case "retransmit attempts bounded" `Quick
            test_stack_retransmit_attempts_bounded;
          Alcotest.test_case "RTO jitter bounds" `Quick
            test_stack_rto_jitter_bounds;
          Alcotest.test_case "RTO jitter deterministic" `Quick
            test_stack_rto_jitter_deterministic;
          Alcotest.test_case "RTO jitter off = doubling" `Quick
            test_stack_rto_jitter_off_is_doubling;
          Alcotest.test_case "overload tiers" `Quick
            test_stack_overload_tiers;
          Alcotest.test_case "fuzzed bytes never raise" `Quick
            test_stack_fuzz_never_raises;
          Alcotest.test_case "ack cancels retransmission" `Quick
            test_stack_ack_cancels_retransmission;
          Alcotest.test_case "SYN retransmission" `Quick
            test_stack_syn_retransmission;
          Alcotest.test_case "delayed acks" `Quick test_stack_delayed_acks;
          Alcotest.test_case "simultaneous open" `Quick test_stack_simultaneous_open;
          Alcotest.test_case "many clients" `Quick test_stack_many_clients ] );
      ( "timer-wheel",
        [ Alcotest.test_case "fires in order" `Quick test_wheel_fires_in_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "wraparound" `Quick test_wheel_wraparound;
          Alcotest.test_case "small steps" `Quick test_wheel_many_small_steps;
          Alcotest.test_case "full revolution" `Quick
            test_wheel_full_revolution;
          Alcotest.test_case "multi-revolution delay" `Quick
            test_wheel_multi_revolution_delay;
          Alcotest.test_case "boundary landing" `Quick
            test_wheel_boundary_landing;
          Alcotest.test_case "validation" `Quick test_wheel_validation;
          Alcotest.test_case "domain ownership" `Quick test_wheel_ownership;
          Alcotest.test_case "ownership follows first use" `Quick
            test_wheel_owned_by_spawning_domain ] );
      ("properties", qcheck_cases) ]
